//! Log-linear latency histograms for the service layer.
//!
//! The service records per-request-kind latencies (end-to-end, queue
//! wait, solve) into histograms with a **fixed, universal bucket
//! schema** so that histograms from different daemons merge *exactly*
//! (bucket-wise addition) — the federation router never averages
//! percentiles, it adds bucket counts and recomputes quantiles from
//! the merged distribution. This is the same reasoning HdrHistogram
//! popularised; the implementation here is a small log-linear variant:
//!
//! * values are **microseconds** (`u64`);
//! * values `0..16` get one bucket each (exact);
//! * every power-of-two octave above that is split into
//!   [`SUB_BUCKETS`] = 16 linear sub-buckets, so the relative
//!   quantization error is bounded by 1/16 ≈ 6.25% and the absolute
//!   error by one bucket width;
//! * the schema tops out at 2⁴⁰ µs (≈ 12.7 days); larger values clamp
//!   into the last bucket.
//!
//! The schema is a compile-time constant ([`BUCKET_COUNT`] buckets) —
//! there is no per-histogram configuration to disagree about, which is
//! what makes cross-daemon merging safe. A schema change is a wire
//! format change and must bump [`SCHEMA_VERSION`].
//!
//! Recording is kept cheap under concurrency by sharding: the server
//! gives each reactor worker its own shard ([`Sharded`]), so `record`
//! takes an uncontended `Mutex` (a couple of atomic ops) and snapshots
//! merge shards on demand. Each shard is internally consistent, so
//! every snapshot satisfies `Σ bucket counts == count` even while 16
//! threads are recording (property-tested in `hist_properties.rs`).

use std::sync::Mutex;

/// Log₂ of the linear sub-buckets per octave.
pub const SUB_BUCKET_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two octave (16).
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Highest representable exponent: values `>= 2^(MAX_EXP+1)` µs clamp
/// into the final bucket.
const MAX_EXP: u32 = 39;
/// Total buckets in the fixed schema: 16 exact unit buckets for
/// `0..16`, then 16 sub-buckets for each octave `2^4 ..= 2^39`.
pub const BUCKET_COUNT: usize = (MAX_EXP as usize - SUB_BUCKET_BITS as usize + 2) * SUB_BUCKETS;
/// Bucket-schema version carried on the wire; decoders reject merges
/// across different versions.
pub const SCHEMA_VERSION: u64 = 1;

/// Bucket index for a microsecond value (total function, clamps at the
/// top of the schema).
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    if exp > MAX_EXP {
        return BUCKET_COUNT - 1;
    }
    let sub = ((v >> (exp - SUB_BUCKET_BITS)) as usize) & (SUB_BUCKETS - 1);
    (exp - SUB_BUCKET_BITS + 1) as usize * SUB_BUCKETS + sub
}

/// Inclusive lower bound (µs) of a bucket.
#[must_use]
pub fn bucket_lower(i: usize) -> u64 {
    assert!(i < BUCKET_COUNT, "bucket index {i} out of range");
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let exp = (i / SUB_BUCKETS) as u32 + SUB_BUCKET_BITS - 1;
    let sub = (i % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (exp - SUB_BUCKET_BITS)
}

/// Width (µs) of a bucket; quantization error is below this.
#[must_use]
pub fn bucket_width(i: usize) -> u64 {
    assert!(i < BUCKET_COUNT, "bucket index {i} out of range");
    if i < SUB_BUCKETS {
        return 1;
    }
    let exp = (i / SUB_BUCKETS) as u32 + SUB_BUCKET_BITS - 1;
    1 << (exp - SUB_BUCKET_BITS)
}

/// Inclusive upper bound (µs) of a bucket — the value quantiles report
/// for samples landing in it (Prometheus `le` semantics).
#[must_use]
pub fn bucket_bound(i: usize) -> u64 {
    bucket_lower(i) + bucket_width(i) - 1
}

/// A single mergeable log-linear histogram over microsecond values.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one microsecond value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a duration given in seconds (rounded to whole µs).
    pub fn record_secs(&mut self, secs: f64) {
        let clamped = secs.max(0.0) * 1e6;
        // f64 above u64::MAX saturates via the cast's defined clamping.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        self.record(clamped.round() as u64);
    }

    /// Total recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values (µs).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bucket-wise merge; exact because every histogram shares the one
    /// fixed schema.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the bucket holding the `ceil(q·count)`-th smallest sample
    /// (capped by the recorded max, so a single-value histogram reports
    /// that value's bucket without overshooting past `max`).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bound(i).min(self.max));
            }
        }
        unreachable!("count ({}) exceeds bucket total", self.count);
    }

    /// Sparse `(bucket index, count)` dump of the non-empty buckets —
    /// the wire representation (ascending index order).
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                #[allow(clippy::cast_possible_truncation)]
                let i32b = i as u32;
                (i32b, c)
            })
            .collect()
    }

    /// Rebuild a histogram from wire parts. Indices outside the schema
    /// are rejected (schema mismatch), keeping merges exact.
    pub fn from_parts(
        buckets: &[(u32, u64)],
        sum: u64,
        min: Option<u64>,
        max: Option<u64>,
    ) -> Result<Self, String> {
        let mut h = Histogram::new();
        for &(i, c) in buckets {
            let i = i as usize;
            if i >= BUCKET_COUNT {
                return Err(format!(
                    "histogram bucket index {i} outside schema (max {})",
                    BUCKET_COUNT - 1
                ));
            }
            h.counts[i] += c;
            h.count += c;
        }
        h.sum = sum;
        h.min = min.unwrap_or(u64::MAX);
        h.max = max.unwrap_or(0);
        if h.count > 0 && (min.is_none() || max.is_none()) {
            return Err("non-empty histogram missing min/max".into());
        }
        Ok(h)
    }
}

/// A histogram sharded across worker threads: `record` touches only
/// the caller's shard (uncontended mutex), `merged` folds all shards
/// into one consistent [`Histogram`].
pub struct Sharded {
    shards: Vec<Mutex<Histogram>>,
}

impl std::fmt::Debug for Sharded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sharded")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Sharded {
    /// A sharded histogram with `shards` independent lanes (≥ 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(Histogram::new())).collect(),
        }
    }

    /// Record `v` µs on the caller's shard (wrapped modulo the lane
    /// count so any worker index is valid).
    pub fn record(&self, shard: usize, v: u64) {
        let lane = &self.shards[shard % self.shards.len()];
        lane.lock().expect("histogram shard poisoned").record(v);
    }

    /// Record a duration in seconds on the caller's shard.
    pub fn record_secs(&self, shard: usize, secs: f64) {
        let clamped = secs.max(0.0) * 1e6;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        self.record(shard, clamped.round() as u64);
    }

    /// Merge all shards into one histogram. Shards are locked one at a
    /// time, so the result can lag concurrent recorders but is always
    /// internally consistent (`Σ buckets == count`).
    #[must_use]
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for lane in &self.shards {
            out.merge(&lane.lock().expect("histogram shard poisoned"));
        }
        out
    }
}

/// The latency quantities the service tracks, one fixed histogram per
/// kind. The wire carries the `label()` string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Map request wall time inside the service (queue wait excluded).
    MapE2e,
    /// Admission-queue wait charged to a map request.
    MapQueueWait,
    /// Solver time inside a map request.
    MapSolve,
    /// Release request wall time.
    ReleaseE2e,
    /// Stats request wall time.
    StatsE2e,
}

impl HistKind {
    /// All kinds, in stable wire/report order.
    pub const ALL: [HistKind; 5] = [
        HistKind::MapE2e,
        HistKind::MapQueueWait,
        HistKind::MapSolve,
        HistKind::ReleaseE2e,
        HistKind::StatsE2e,
    ];

    /// Stable name used on the wire and in the Prometheus exposition.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HistKind::MapE2e => "map_e2e",
            HistKind::MapQueueWait => "map_queue_wait",
            HistKind::MapSolve => "map_solve",
            HistKind::ReleaseE2e => "release_e2e",
            HistKind::StatsE2e => "stats_e2e",
        }
    }

    fn index(self) -> usize {
        match self {
            HistKind::MapE2e => 0,
            HistKind::MapQueueWait => 1,
            HistKind::MapSolve => 2,
            HistKind::ReleaseE2e => 3,
            HistKind::StatsE2e => 4,
        }
    }
}

/// The service's full histogram set: one [`Sharded`] histogram per
/// [`HistKind`]. `off()` turns every `record` into a no-op so the
/// criterion overhead contract can measure the plain path.
pub struct HistSet {
    enabled: bool,
    hists: Vec<Sharded>,
}

impl std::fmt::Debug for HistSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistSet")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl HistSet {
    /// An active set with `shards` lanes per histogram.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            enabled: true,
            hists: HistKind::ALL.iter().map(|_| Sharded::new(shards)).collect(),
        }
    }

    /// A disabled set: `record*` are no-ops, `merged` is always empty.
    #[must_use]
    pub fn off() -> Self {
        Self {
            enabled: false,
            hists: HistKind::ALL.iter().map(|_| Sharded::new(1)).collect(),
        }
    }

    /// Is recording active?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record `v` µs for `kind` on the worker's shard.
    pub fn record(&self, kind: HistKind, shard: usize, v: u64) {
        if self.enabled {
            self.hists[kind.index()].record(shard, v);
        }
    }

    /// Record a duration in seconds for `kind` on the worker's shard.
    pub fn record_secs(&self, kind: HistKind, shard: usize, secs: f64) {
        if self.enabled {
            self.hists[kind.index()].record_secs(shard, secs);
        }
    }

    /// Merged snapshot of one kind.
    #[must_use]
    pub fn merged(&self, kind: HistKind) -> Histogram {
        self.hists[kind.index()].merged()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_contiguous_and_monotone() {
        // Every bucket's lower bound is the previous bucket's bound + 1.
        for i in 1..BUCKET_COUNT {
            assert_eq!(
                bucket_lower(i),
                bucket_bound(i - 1) + 1,
                "gap or overlap at bucket {i}"
            );
        }
        assert_eq!(bucket_lower(0), 0);
    }

    #[test]
    fn index_respects_bucket_bounds() {
        for v in [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            123_456,
            u64::from(u32::MAX),
        ] {
            let i = bucket_index(v);
            assert!(
                bucket_lower(i) <= v && v <= bucket_bound(i),
                "value {v} bucket {i}"
            );
        }
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(1 << 40), BUCKET_COUNT - 1);
        // The largest in-schema value still lands in the last bucket.
        assert_eq!(bucket_index((1 << 40) - 1), BUCKET_COUNT - 1);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn single_value_quantiles_report_that_value() {
        let mut h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = h.quantile(q).unwrap();
            let i = bucket_index(777);
            assert!(got >= bucket_lower(i) && got <= bucket_bound(i));
            assert!(got <= 777, "quantile overshot the recorded max");
        }
        assert_eq!(h.min(), Some(777));
        assert_eq!(h.max(), Some(777));
        assert_eq!(h.sum(), 777);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 50, 50, 9000] {
            a.record(v);
        }
        for v in [2u64, 50, 100_000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.min(), Some(1));
        assert_eq!(merged.max(), Some(100_000));
        let mut all = Histogram::new();
        for v in [1u64, 50, 50, 9000, 2, 50, 100_000] {
            all.record(v);
        }
        assert_eq!(all.nonzero_buckets(), merged.nonzero_buckets());
    }

    #[test]
    fn wire_round_trip_preserves_distribution() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 40, 500, 1 << 30] {
            h.record(v);
        }
        let back = Histogram::from_parts(&h.nonzero_buckets(), h.sum(), h.min(), h.max()).unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.nonzero_buckets(), h.nonzero_buckets());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(back.quantile(q), h.quantile(q));
        }
    }

    #[test]
    fn from_parts_rejects_out_of_schema_indices() {
        #[allow(clippy::cast_possible_truncation)]
        let bad = BUCKET_COUNT as u32;
        let err = Histogram::from_parts(&[(bad, 1)], 1, Some(1), Some(1)).unwrap_err();
        assert!(err.contains("outside schema"), "{err}");
    }

    #[test]
    fn sharded_record_merges_consistently() {
        let s = Sharded::new(4);
        for i in 0..100u64 {
            s.record(i as usize, i * 10);
        }
        let m = s.merged();
        assert_eq!(m.count(), 100);
        assert_eq!(m.min(), Some(0));
        assert_eq!(m.max(), Some(990));
    }

    #[test]
    fn histset_off_records_nothing() {
        let hs = HistSet::off();
        hs.record(HistKind::MapE2e, 0, 123);
        hs.record_secs(HistKind::MapSolve, 1, 0.5);
        assert_eq!(hs.merged(HistKind::MapE2e).count(), 0);
        assert_eq!(hs.merged(HistKind::MapSolve).count(), 0);
        assert!(!hs.enabled());
    }

    #[test]
    fn record_secs_rounds_to_micros() {
        let mut h = Histogram::new();
        h.record_secs(0.001_5); // 1500 µs
        assert_eq!(h.min(), Some(1500));
        h.record_secs(-4.0); // clamps to zero
        assert_eq!(h.min(), Some(0));
    }
}
