//! A minimal JSON value model with a recursive-descent parser and an
//! emitter.
//!
//! The workspace builds fully offline and its vendored `serde` is a
//! marker-trait shim (see `third_party/README.md`), so the wire protocol
//! cannot lean on `serde_json`. This module is the complement of the
//! hand-rolled JSON *writers* already in `geomap_core::metrics` /
//! `geomap_core::trace`: a reader/writer pair for whole documents, small
//! enough to audit and strict enough for a network-facing daemon
//! (numbers must be finite, strings must close, trailing garbage is an
//! error).

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve insertion order so emitted
/// documents are stable for golden tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; the protocol's
    /// integers are small enough to be exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, rejecting
    /// fractional, negative, or out-of-range values. The bound is
    /// strict: `u64::MAX as f64` rounds *up* to 2^64, which is not a
    /// valid u64, so it must not be accepted and saturated. Integers
    /// above 2^53 are inherently approximate in a JSON number; callers
    /// get the nearest representable value.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        (x >= 0.0 && x.fract() == 0.0 && x < u64::MAX as f64).then_some(x as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True when this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Emit compact JSON (no whitespace). Non-finite numbers emit as
    /// `null`, mirroring [`geomap_core::JsonLinesSink`].
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's f64 Display is the shortest string that
                    // parses back to the same bits, so numbers survive a
                    // round-trip bit-identically.
                    write!(out, "{x}").expect("writing to String cannot fail");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json(k, out);
                    out.push_str("\":");
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document, rejecting trailing non-whitespace.
    /// Nesting beyond [`MAX_DEPTH`] containers is an error, not a stack
    /// overflow — the parser recurses, and this daemon parses
    /// attacker-supplied lines.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// JSON string escaping shared by the emitter (same rules as
/// `geomap_core::metrics::escape_json`, duplicated because that helper
/// is crate-private).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Deepest container nesting [`Json::parse`] accepts. The wire protocol
/// nests three levels; 128 leaves two orders of magnitude of headroom
/// while keeping the recursive parser far from any thread's stack limit.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos = end;
                            // Surrogate pairs are not needed by this
                            // protocol (all strings are CSV/identifiers);
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Collect the longest run of plain bytes in one go.
                    let start = self.pos - 1;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let x: f64 = text
            .parse()
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number {text:?} at byte {start}"));
        }
        Ok(Json::Num(x))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Convenience: an object from key/value pairs.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-1.5", "1e-3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.emit()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_roundtrip_bit_identically() {
        for &x in &[0.1, 1.0 / 3.0, 6.02e23, -0.0961, f64::MIN_POSITIVE] {
            let v = Json::Num(x);
            let back = Json::parse(&v.emit()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a":[1,2,{"b":"c\nd"}],"e":null,"f":{"g":true}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.emit(), text);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c\nd")
        );
        assert!(v.get("e").unwrap().is_null());
        assert_eq!(v.get("f").unwrap().get("g").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn embedded_csv_strings_survive() {
        let csv = "src,dst,bytes,msgs\n0,1,5,1\n1,0,5,1\n";
        let v = obj(vec![("pattern", Json::Str(csv.into()))]);
        let back = Json::parse(&v.emit()).unwrap();
        assert_eq!(back.get("pattern").unwrap().as_str(), Some(csv));
    }

    #[test]
    fn malformed_inputs_rejected_with_positions() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"unterminated",
            "nul",
            "1.2.3",
            "{} garbage",
            "[1] 2",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn as_u64_rejects_out_of_range() {
        // `u64::MAX as f64` rounds up to 2^64, one past the valid
        // range; accepting it would silently saturate to u64::MAX.
        assert_eq!(Json::Num(u64::MAX as f64).as_u64(), None);
        assert_eq!(Json::Num(f64::INFINITY).as_u64(), None);
        // The largest f64 integer below 2^64 is still in range.
        let top = (u64::MAX as f64).next_down();
        assert_eq!(Json::Num(top).as_u64(), Some(top as u64));
        assert_eq!(Json::Num(9007199254740992.0).as_u64(), Some(1 << 53));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse("\"a\\u00e9b\"").unwrap();
        assert_eq!(v.as_str(), Some("aéb"));
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(Json::Num(f64::NAN).emit(), "null");
    }

    #[test]
    fn nesting_at_the_cap_parses() {
        let text = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&text).is_ok());
        let objs = format!("{}1{}", "{\"k\":".repeat(MAX_DEPTH), "}".repeat(MAX_DEPTH));
        assert!(Json::parse(&objs).is_ok());
    }

    #[test]
    fn nesting_past_the_cap_is_an_error_not_a_crash() {
        // Far beyond the cap: without the depth check this recursion
        // would blow the stack long before hitting a parse error.
        for depth in [MAX_DEPTH + 1, 100_000] {
            let text = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
            let err = Json::parse(&text).unwrap_err();
            assert!(err.contains("nesting deeper"), "{err}");
        }
    }
}
