//! Mapping-as-a-service: the mapping pipeline as a long-lived daemon.
//!
//! The batch CLI answers one mapping question per process launch and
//! re-derives everything from scratch. This crate runs the same
//! pipeline behind a socket, which is what a geo-distributed cluster
//! operator actually deploys: many tenants ask for placements against
//! *one* shared cluster, so the server owns the state a one-shot run
//! never had —
//!
//! * a [`ClusterInventory`] of free nodes
//!   per site, decremented when a placement is reserved and returned on
//!   explicit teardown or lease expiry, never oversubscribed no matter
//!   how requests interleave;
//! * a two-tier [`cache`] keyed by content
//!   [fingerprints](fingerprint), so repeated topologies skip the
//!   calibration campaign and identical requests skip the solve;
//! * a bounded admission queue with backpressure and per-request
//!   deadlines, and a worker pool draining it ([`server`]).
//!
//! Layering:
//!
//! ```text
//! proto (request/response structs)  wire (domain JSON, WireFormat)
//!        ├── json (v1 parser/emitter) ──┤
//!        └── frame (v2 binary frames) ──┘
//! service::MappingService            ← in-memory mode, deterministic
//!        ├── inventory  ├── cache  ├── fingerprint
//! server::MappingServer              ← TCP front-end, reactor threads
//! transport                          ← Transport/Connector seam, faults
//! client                             ← blocking + retrying + pooled
//! ```
//!
//! Two wire formats share the port: v1 JSON lines and v2 binary frames
//! with correlation ids ([`frame`]), told apart by each message's first
//! byte. [`client::PooledClient`] pipelines batches over a connection
//! pool for throughput; the differential suite
//! (`tests/wire_differential.rs`) pins v2 to byte-identical decoded
//! responses against v1.
//!
//! [`service::MappingService::handle`] is the entire service as a
//! function call; the TCP layer adds nothing but transport and
//! concurrency, so every behavior is testable without sockets.

pub mod cache;
pub mod client;
pub mod clock;
pub mod federation;
pub mod fingerprint;
pub mod frame;
pub mod hist;
pub mod inventory;
pub mod json;
pub mod proto;
pub mod reconciler;
pub mod server;
pub mod service;
pub mod transport;
pub mod wire;

pub use client::{ClientError, PooledClient, RetryPolicy, RetryingClient, ServiceClient};
pub use clock::{Clock, VirtualClock, WallClock};
pub use federation::{FederatedPool, LeaseJournal, RoutedResponse, ShardMap, ShardRouter};
pub use frame::{Frame, FrameError, FrameKind, FRAME_MAGIC, FRAME_VERSION, MAX_FRAME_BYTES};
pub use hist::{HistKind, HistSet, Histogram};
pub use inventory::{ClusterInventory, DriftCounters, RebookError};
pub use proto::{
    ErrorCode, MapRequest, RemapDiffResponse, RemapRequest, Request, Response, TraceContext,
    PROTOCOL_VERSION,
};
pub use reconciler::{Reconciler, ReconcilerConfig, TickReport, WatchedPlacement};
pub use server::MappingServer;
pub use service::{MappingService, ServiceConfig};
pub use transport::{
    Connector, Fault, FaultPlan, FaultyConnector, LoopbackConnector, TcpConnector, Transport,
    TransportError,
};
pub use wire::WireFormat;

use geomap_core::ConstraintVector;
use geonet::SiteId;

/// Parse a constraint vector over `n` processes from the same
/// `process,site` CSV the file-based CLI commands use, so a constraints
/// file can be embedded in a request verbatim.
pub fn parse_constraints(n: usize, csv: &str) -> Result<ConstraintVector, String> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty input")?;
    if header.trim() != "process,site" {
        return Err(format!("bad header {header:?}, expected \"process,site\""));
    }
    let mut c = ConstraintVector::none(n);
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 2 {
            return Err(format!(
                "line {}: expected 2 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let parse = |s: &str, what: &str| -> Result<usize, String> {
            s.trim()
                .parse::<usize>()
                .map_err(|e| format!("line {}: bad {what} {s:?}: {e}", lineno + 1))
        };
        let process = parse(fields[0], "process")?;
        if process >= n {
            return Err(format!(
                "line {}: process {process} out of range for n={n}",
                lineno + 1
            ));
        }
        c.pin(process, SiteId(parse(fields[1], "site")?));
    }
    Ok(c)
}

/// Canonical `process,site` CSV for a constraint vector (pinned
/// processes only) — the inverse of [`parse_constraints`] and the
/// encoding cache fingerprints are taken over.
pub fn constraints_csv(constraints: &ConstraintVector) -> String {
    let mut s = String::from("process,site\n");
    for (i, pin) in constraints.iter().enumerate() {
        if let Some(site) = pin {
            s.push_str(&format!("{},{}\n", i, site.index()));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_csv_roundtrip() {
        let mut c = ConstraintVector::none(6);
        c.pin(0, SiteId(2));
        c.pin(5, SiteId(1));
        assert_eq!(parse_constraints(6, &constraints_csv(&c)).unwrap(), c);
    }

    #[test]
    fn constraints_csv_rejects_garbage() {
        assert!(parse_constraints(4, "nope\n")
            .unwrap_err()
            .contains("header"));
        assert!(parse_constraints(4, "process,site\n9,0\n")
            .unwrap_err()
            .contains("out of range"));
        assert!(parse_constraints(4, "process,site\n1,x\n")
            .unwrap_err()
            .contains("bad site"));
    }
}
