//! The cluster inventory: free nodes per site, decremented on
//! placement, returned on explicit teardown or lease expiry.
//!
//! This is the state a one-shot batch run never needed: the daemon
//! fronts a real cluster, so concurrent mapping requests that *reserve*
//! their placement must never oversubscribe a site. All transitions
//! happen under one mutex and maintain the conservation invariant
//!
//! ```text
//! free[j] + Σ_{active leases} counts[j] == capacity[j]   for every site j
//! ```
//!
//! checked in debug builds on every operation and by the stress test in
//! `tests/inventory_stress.rs`. Free counts are `usize` and every
//! reservation checks `free[j] >= counts[j]` for all sites before
//! decrementing any of them, so a count can never go negative and a
//! partially-applied reservation is impossible.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::clock::{Clock, WallClock};

/// Why a reservation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsufficientNodes {
    /// First site that could not fit its share.
    pub site: usize,
    /// Nodes the placement wanted there.
    pub wanted: usize,
    /// Nodes actually free there.
    pub free: usize,
}

impl std::fmt::Display for InsufficientNodes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "site {} has {} free nodes, placement needs {}",
            self.site, self.free, self.wanted
        )
    }
}

/// Why a lease could not be rebooked onto new counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebookError {
    /// The lease is unknown, expired, or was already released.
    UnknownLease,
    /// The *net* growth at some site does not fit its free nodes
    /// (shrinking sites are credited before growing ones are checked).
    Insufficient(InsufficientNodes),
}

impl std::fmt::Display for RebookError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebookError::UnknownLease => write!(f, "unknown lease (expired or never granted)"),
            RebookError::Insufficient(e) => e.fmt(f),
        }
    }
}

/// Monotonic drift counters a reconciler watches: how often has the
/// world shifted under the mappings this daemon handed out?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriftCounters {
    /// Leases that hit their TTL and were reaped (their nodes went
    /// back to the free pool — any mapping placed on them is stale).
    pub expired_leases: u64,
    /// Capacity edits via [`ClusterInventory::set_capacity`] (node
    /// failures, scale-ups).
    pub capacity_changes: u64,
}

/// A granted reservation.
#[derive(Debug, Clone)]
struct Lease {
    counts: Vec<usize>,
    expires: Option<Instant>,
}

#[derive(Debug)]
struct Inner {
    capacity: Vec<usize>,
    free: Vec<usize>,
    leases: HashMap<u64, Lease>,
    next_lease: u64,
    drift: DriftCounters,
}

impl Inner {
    fn expire(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.expires.is_some_and(|t| t <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let lease = self.leases.remove(&id).expect("lease listed above");
            for (f, c) in self.free.iter_mut().zip(&lease.counts) {
                *f += c;
            }
            self.drift.expired_leases += 1;
        }
        self.check();
    }

    fn check(&self) {
        #[cfg(debug_assertions)]
        {
            for j in 0..self.capacity.len() {
                let leased: usize = self.leases.values().map(|l| l.counts[j]).sum();
                debug_assert_eq!(
                    self.free[j] + leased,
                    self.capacity[j],
                    "inventory conservation broken at site {j}"
                );
            }
        }
    }
}

/// Thread-safe free-node accounting for the cluster a daemon fronts.
#[derive(Debug)]
pub struct ClusterInventory {
    inner: Mutex<Inner>,
    clock: Arc<dyn Clock>,
}

impl ClusterInventory {
    /// An inventory with every node free, expiring leases on wall time.
    pub fn new(capacities: Vec<usize>) -> Self {
        Self::with_clock(capacities, Arc::new(WallClock))
    }

    /// An inventory whose implicit "now" (lease grant and expiry) is
    /// read from `clock` — deterministic tests inject a
    /// [`crate::clock::VirtualClock`] here. The `*_at` methods still
    /// take an explicit instant and bypass the clock entirely.
    pub fn with_clock(capacities: Vec<usize>, clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                free: capacities.clone(),
                capacity: capacities,
                leases: HashMap::new(),
                next_lease: 1,
                drift: DriftCounters::default(),
            }),
            clock,
        }
    }

    /// Atomically reserve `counts[j]` nodes on every site `j`, returning
    /// a lease id. Nothing is decremented unless *every* site fits.
    /// `ttl = None` leases never expire (explicit teardown only).
    pub fn reserve(
        &self,
        counts: &[usize],
        ttl: Option<Duration>,
    ) -> Result<u64, InsufficientNodes> {
        self.reserve_at(counts, ttl, self.clock.now())
    }

    /// [`ClusterInventory::reserve`] with an explicit clock reading
    /// (tests drive expiry deterministically through this).
    pub fn reserve_at(
        &self,
        counts: &[usize],
        ttl: Option<Duration>,
        now: Instant,
    ) -> Result<u64, InsufficientNodes> {
        let mut inner = self.inner.lock().expect("inventory lock");
        assert_eq!(
            counts.len(),
            inner.capacity.len(),
            "placement covers {} sites, cluster has {}",
            counts.len(),
            inner.capacity.len()
        );
        inner.expire(now);
        for (site, (&wanted, &free)) in counts.iter().zip(&inner.free).enumerate() {
            if wanted > free {
                return Err(InsufficientNodes { site, wanted, free });
            }
        }
        for (f, c) in inner.free.iter_mut().zip(counts) {
            *f -= c;
        }
        let id = inner.next_lease;
        inner.next_lease += 1;
        inner.leases.insert(
            id,
            Lease {
                counts: counts.to_vec(),
                expires: ttl.map(|t| now + t),
            },
        );
        inner.check();
        Ok(id)
    }

    /// Tear down a lease, returning its per-site node counts.
    /// Unknown (or already-expired) leases are an error.
    pub fn release(&self, lease: u64) -> Result<Vec<usize>, String> {
        let mut inner = self.inner.lock().expect("inventory lock");
        inner.expire(self.clock.now());
        let Some(l) = inner.leases.remove(&lease) else {
            return Err(format!("unknown lease {lease} (expired or never granted)"));
        };
        for (f, c) in inner.free.iter_mut().zip(&l.counts) {
            *f += c;
        }
        inner.check();
        Ok(l.counts)
    }

    /// Current free nodes per site (after expiring stale leases).
    pub fn free_nodes(&self) -> Vec<usize> {
        self.free_nodes_at(self.clock.now())
    }

    /// [`ClusterInventory::free_nodes`] with an explicit clock reading.
    pub fn free_nodes_at(&self, now: Instant) -> Vec<usize> {
        let mut inner = self.inner.lock().expect("inventory lock");
        inner.expire(now);
        inner.free.clone()
    }

    /// The configured capacities (as of the last
    /// [`ClusterInventory::set_capacity`], if any).
    pub fn capacities(&self) -> Vec<usize> {
        self.inner.lock().expect("inventory lock").capacity.clone()
    }

    /// Change one site's capacity (node failure shrinks it, a scale-up
    /// grows it) and return the capacity actually applied. The request
    /// is clamped to the site's currently-leased node count — granted
    /// leases are never revoked by a capacity edit, so conservation
    /// (`free + leased == capacity`) holds by construction and `free`
    /// absorbs the whole delta.
    pub fn set_capacity(&self, site: usize, capacity: usize) -> usize {
        let mut inner = self.inner.lock().expect("inventory lock");
        inner.expire(self.clock.now());
        assert!(
            site < inner.capacity.len(),
            "site {site} out of range for {}-site cluster",
            inner.capacity.len()
        );
        let leased: usize = inner.leases.values().map(|l| l.counts[site]).sum();
        let applied = capacity.max(leased);
        if applied != inner.capacity[site] {
            inner.capacity[site] = applied;
            inner.free[site] = applied - leased;
            inner.drift.capacity_changes += 1;
        }
        inner.check();
        applied
    }

    /// Atomically move a live lease onto new per-site counts (an online
    /// remap migrating ranks between sites keeps its one lease id — the
    /// exactly-once story never sees a release/reserve pair that could
    /// half-fail). Shrinking sites are credited first, then growing
    /// sites are checked against the resulting free pool; on any
    /// refusal nothing changes. TTL and expiry instant are preserved.
    pub fn rebook(&self, lease: u64, counts: &[usize]) -> Result<(), RebookError> {
        let mut inner = self.inner.lock().expect("inventory lock");
        inner.expire(self.clock.now());
        assert_eq!(
            counts.len(),
            inner.capacity.len(),
            "placement covers {} sites, cluster has {}",
            counts.len(),
            inner.capacity.len()
        );
        let Some(old) = inner.leases.get(&lease).map(|l| l.counts.clone()) else {
            return Err(RebookError::UnknownLease);
        };
        // Check the net move against free + what this lease returns.
        for (site, (&new, &was)) in counts.iter().zip(&old).enumerate() {
            let available = inner.free[site] + was;
            if new > available {
                return Err(RebookError::Insufficient(InsufficientNodes {
                    site,
                    wanted: new,
                    free: available,
                }));
            }
        }
        for (site, (&new, &was)) in counts.iter().zip(&old).enumerate() {
            inner.free[site] = inner.free[site] + was - new;
        }
        inner
            .leases
            .get_mut(&lease)
            .expect("lease checked above")
            .counts = counts.to_vec();
        inner.check();
        Ok(())
    }

    /// Snapshot of the monotonic [`DriftCounters`] (expiring stale
    /// leases first, so a TTL that lapsed since the last call is
    /// counted).
    pub fn drift_counters(&self) -> DriftCounters {
        let mut inner = self.inner.lock().expect("inventory lock");
        inner.expire(self.clock.now());
        inner.drift
    }

    /// Number of live leases (after expiring stale ones).
    pub fn active_leases(&self) -> usize {
        let mut inner = self.inner.lock().expect("inventory lock");
        inner.expire(self.clock.now());
        inner.leases.len()
    }

    /// The per-site counts held by one live lease, or `None` if it is
    /// unknown or has expired. The federation journal uses this to
    /// answer "is this lease still held?" without mutating anything.
    pub fn lease_counts(&self, lease: u64) -> Option<Vec<usize>> {
        let mut inner = self.inner.lock().expect("inventory lock");
        inner.expire(self.clock.now());
        inner.leases.get(&lease).map(|l| l.counts.clone())
    }

    /// Per-site node counts summed over live leases (after expiring
    /// stale ones) — the `Σ leases` side of the conservation invariant,
    /// so release-build tests can assert
    /// `free[j] + leased[j] == capacity[j]` without debug assertions.
    pub fn leased_counts(&self) -> Vec<usize> {
        self.leased_counts_at(self.clock.now())
    }

    /// `(free, leased)` per site read under ONE lock acquisition.
    /// Summing separate [`ClusterInventory::free_nodes`] and
    /// [`ClusterInventory::leased_counts`] calls is not a consistent
    /// view — a lease can expire (or a sibling thread reserve) between
    /// the two reads, so conservation checks must use this snapshot.
    pub fn ledger(&self) -> (Vec<usize>, Vec<usize>) {
        let mut inner = self.inner.lock().expect("inventory lock");
        inner.expire(self.clock.now());
        let mut leased = vec![0usize; inner.free.len()];
        for l in inner.leases.values() {
            for (site, &n) in l.counts.iter().enumerate() {
                leased[site] += n;
            }
        }
        (inner.free.clone(), leased)
    }

    /// [`ClusterInventory::leased_counts`] with an explicit clock.
    pub fn leased_counts_at(&self, now: Instant) -> Vec<usize> {
        let mut inner = self.inner.lock().expect("inventory lock");
        inner.expire(now);
        let mut leased = vec![0usize; inner.capacity.len()];
        for lease in inner.leases.values() {
            for (t, c) in leased.iter_mut().zip(&lease.counts) {
                *t += c;
            }
        }
        leased
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_then_release_restores_free_counts() {
        let inv = ClusterInventory::new(vec![4, 4]);
        let lease = inv.reserve(&[2, 3], None).unwrap();
        assert_eq!(inv.free_nodes(), vec![2, 1]);
        assert_eq!(inv.active_leases(), 1);
        assert_eq!(inv.release(lease).unwrap(), vec![2, 3]);
        assert_eq!(inv.free_nodes(), vec![4, 4]);
        assert_eq!(inv.active_leases(), 0);
    }

    #[test]
    fn oversubscription_is_refused_atomically() {
        let inv = ClusterInventory::new(vec![4, 4]);
        inv.reserve(&[4, 0], None).unwrap();
        // Site 1 would fit, site 0 would not: nothing may be taken.
        let err = inv.reserve(&[1, 2], None).unwrap_err();
        assert_eq!(err.site, 0);
        assert_eq!(err.free, 0);
        assert_eq!(err.wanted, 1);
        assert_eq!(inv.free_nodes(), vec![0, 4]);
        assert!(err.to_string().contains("site 0"));
    }

    #[test]
    fn release_of_unknown_lease_fails() {
        let inv = ClusterInventory::new(vec![2]);
        assert!(inv.release(99).unwrap_err().contains("unknown lease"));
    }

    #[test]
    fn leases_expire_and_return_nodes() {
        let inv = ClusterInventory::new(vec![4]);
        let t0 = Instant::now();
        inv.reserve_at(&[3], Some(Duration::from_secs(10)), t0)
            .unwrap();
        assert_eq!(inv.free_nodes_at(t0 + Duration::from_secs(5)), vec![1]);
        assert_eq!(inv.free_nodes_at(t0 + Duration::from_secs(10)), vec![4]);
        assert_eq!(inv.active_leases(), 0);
    }

    #[test]
    fn expired_lease_cannot_be_released() {
        let inv = ClusterInventory::new(vec![2]);
        let t0 = Instant::now();
        let lease = inv
            .reserve_at(&[1], Some(Duration::from_nanos(1)), t0)
            .unwrap();
        // Force expiry, then the explicit teardown must report unknown.
        assert_eq!(inv.free_nodes_at(t0 + Duration::from_secs(1)), vec![2]);
        assert!(inv.release(lease).is_err());
    }

    #[test]
    fn expiry_unblocks_a_waiting_reservation() {
        let inv = ClusterInventory::new(vec![2]);
        let t0 = Instant::now();
        inv.reserve_at(&[2], Some(Duration::from_secs(1)), t0)
            .unwrap();
        assert!(inv.reserve_at(&[1], None, t0).is_err());
        assert!(inv
            .reserve_at(&[1], None, t0 + Duration::from_secs(2))
            .is_ok());
    }

    #[test]
    fn virtual_clock_drives_implicit_expiry() {
        use crate::clock::VirtualClock;
        let clock = Arc::new(VirtualClock::new());
        let inv = ClusterInventory::with_clock(vec![4], Arc::clone(&clock) as Arc<dyn Clock>);
        let lease = inv.reserve(&[3], Some(Duration::from_millis(100))).unwrap();
        assert_eq!(inv.free_nodes(), vec![1]);
        assert_eq!(inv.lease_counts(lease), Some(vec![3]));
        clock.advance_ms(99);
        assert_eq!(inv.free_nodes(), vec![1]);
        clock.advance_ms(1);
        // Expiry exactly at the deadline, through the implicit-now paths.
        assert_eq!(inv.free_nodes(), vec![4]);
        assert_eq!(inv.lease_counts(lease), None);
        assert!(inv.release(lease).is_err());
    }

    #[test]
    #[should_panic(expected = "covers")]
    fn wrong_site_count_is_a_bug() {
        ClusterInventory::new(vec![2, 2])
            .reserve(&[1], None)
            .unwrap();
    }

    #[test]
    fn set_capacity_clamps_to_leased_and_preserves_conservation() {
        let inv = ClusterInventory::new(vec![4, 4]);
        inv.reserve(&[3, 0], None).unwrap();
        // Shrink below the leased count: clamped to 3, nothing free.
        assert_eq!(inv.set_capacity(0, 1), 3);
        assert_eq!(inv.capacities(), vec![3, 4]);
        assert_eq!(inv.free_nodes(), vec![0, 4]);
        // Grow: the delta lands entirely in the free pool.
        assert_eq!(inv.set_capacity(0, 6), 6);
        assert_eq!(inv.free_nodes(), vec![3, 4]);
        let (free, leased) = inv.ledger();
        for ((f, l), c) in free.iter().zip(&leased).zip(inv.capacities()) {
            assert_eq!(f + l, c);
        }
        assert_eq!(inv.drift_counters().capacity_changes, 2);
        // A no-op edit is not drift.
        assert_eq!(inv.set_capacity(0, 6), 6);
        assert_eq!(inv.drift_counters().capacity_changes, 2);
    }

    #[test]
    fn rebook_moves_a_lease_atomically() {
        let inv = ClusterInventory::new(vec![4, 4]);
        let lease = inv.reserve(&[3, 1], None).unwrap();
        inv.rebook(lease, &[1, 3]).unwrap();
        assert_eq!(inv.free_nodes(), vec![3, 1]);
        assert_eq!(inv.lease_counts(lease), Some(vec![1, 3]));
        assert_eq!(inv.active_leases(), 1);
        // Growth past free + own holdings is refused with nothing taken.
        let err = inv.rebook(lease, &[0, 5]).unwrap_err();
        assert_eq!(
            err,
            RebookError::Insufficient(InsufficientNodes {
                site: 1,
                wanted: 5,
                free: 4,
            })
        );
        assert_eq!(inv.free_nodes(), vec![3, 1]);
        assert_eq!(inv.lease_counts(lease), Some(vec![1, 3]));
        assert_eq!(
            inv.rebook(999, &[0, 0]).unwrap_err(),
            RebookError::UnknownLease
        );
    }

    #[test]
    fn expired_leases_count_as_drift() {
        use crate::clock::VirtualClock;
        let clock = Arc::new(VirtualClock::new());
        let inv = ClusterInventory::with_clock(vec![4], Arc::clone(&clock) as Arc<dyn Clock>);
        inv.reserve(&[1], Some(Duration::from_millis(10))).unwrap();
        inv.reserve(&[1], Some(Duration::from_millis(20))).unwrap();
        assert_eq!(inv.drift_counters().expired_leases, 0);
        clock.advance_ms(15);
        assert_eq!(inv.drift_counters().expired_leases, 1);
        clock.advance_ms(15);
        let drift = inv.drift_counters();
        assert_eq!(drift.expired_leases, 2);
        assert_eq!(drift.capacity_changes, 0);
        // A rebook of an expired lease is refused.
        assert_eq!(inv.rebook(1, &[1]).unwrap_err(), RebookError::UnknownLease);
    }
}
