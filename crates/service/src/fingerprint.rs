//! Stable fingerprints for cache keys.
//!
//! The service caches calibrations, prepared problems and solved
//! results keyed by *content*, not by request identity: two requests
//! describing the same network, communication graph and solver
//! configuration must collide on the same key regardless of which
//! connection submitted them. `std::collections::hash_map::DefaultHasher`
//! is documented to be allowed to change between releases, so the keys
//! use a fixed FNV-1a 64-bit hash over canonical byte encodings instead
//! — stable across runs, platforms and toolchains (which also makes the
//! cache-hit assertions in CI meaningful).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incrementally-fed FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feed raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feed a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// cannot collide.
    pub fn str(self, s: &str) -> Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// Feed a `u64` as little-endian bytes.
    pub fn u64(self, x: u64) -> Self {
        self.bytes(&x.to_le_bytes())
    }

    /// Feed an `f64` by bit pattern (distinguishes `-0.0` from `0.0`,
    /// which is fine for keys: they describe different inputs).
    pub fn f64(self, x: f64) -> Self {
        self.u64(x.to_bits())
    }

    /// The 64-bit digest.
    pub fn finish(self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(Fingerprint::new().finish(), 0xcbf29ce484222325);
        assert_eq!(Fingerprint::new().bytes(b"a").finish(), 0xaf63dc4c8601ec8c);
        assert_eq!(
            Fingerprint::new().bytes(b"foobar").finish(),
            0x85944171f73967e8
        );
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let ab_c = Fingerprint::new().str("ab").str("c").finish();
        let a_bc = Fingerprint::new().str("a").str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn field_order_matters() {
        let xy = Fingerprint::new().u64(1).u64(2).finish();
        let yx = Fingerprint::new().u64(2).u64(1).finish();
        assert_ne!(xy, yx);
    }

    #[test]
    fn floats_hash_by_bits() {
        let a = Fingerprint::new().f64(0.1).finish();
        let b = Fingerprint::new().f64(0.1 + f64::EPSILON).finish();
        assert_ne!(a, b);
        assert_eq!(a, Fingerprint::new().f64(0.1).finish());
    }
}
