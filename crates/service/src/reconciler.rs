//! The reconciler control loop: watch drift, repair placements,
//! publish [`RemapDiffResponse`] diffs.
//!
//! Everything else in this crate is request/response — a client asks,
//! the daemon answers, state only changes when someone speaks. Real
//! geo-clouds drift *between* requests: leases hit their TTL and hand
//! nodes back, capacity edits (node failures, scale-ups) move the
//! goalposts, and degraded calibration campaigns cut fresh mappings
//! against stale link estimates. The reconciler closes the loop: it
//! scores those drift signals against a threshold each tick and, when
//! the world has shifted enough, runs the bounded-migration re-solver
//! ([`MappingService::handle_remap`]) for every placement it watches,
//! rebooking live leases in place and publishing the diff.
//!
//! Determinism first: [`Reconciler::tick`] is a plain function call —
//! one drift read, one decision, zero or more remaps — so tests drive
//! it directly on a [`VirtualClock`](crate::clock::VirtualClock)-backed
//! service and assert exact outcomes. [`Reconciler::spawn`] wraps the
//! same `tick` in a background thread for production daemons; nothing
//! lives in the thread that the tests can't reach.
//!
//! Federation: a reconciler only repairs placements homed on its own
//! shard. A placement whose `home_shard` differs is *deferred* — its
//! row is skipped and counted, because migrating its lease belongs to
//! the shard that granted it (the
//! [`ShardRouter`](crate::federation::ShardRouter) routes remap
//! requests there; see [`crate::federation`]).

use crate::inventory::DriftCounters;
use crate::proto::{CalibSpec, ErrorCode, RemapDiffResponse, RemapRequest, Response};
use crate::service::MappingService;
use geomap_core::TraceScope;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for a [`Reconciler`].
#[derive(Debug, Clone)]
pub struct ReconcilerConfig {
    /// Tick cadence of the background thread ([`Reconciler::spawn`]).
    /// Deterministic tests bypass it by calling [`Reconciler::tick`]
    /// directly.
    pub interval: Duration,
    /// Drift score at or above which a tick repairs its placements.
    /// The score is the sum of *new* drift since the last remap-
    /// triggering tick: expired leases + capacity edits + calibration
    /// staleness increases.
    pub threshold: u64,
    /// Migration budget per repair, as a fraction of the placement's
    /// ranks (rounded up, so any positive fraction allows at least one
    /// move). The SC'17 Eq. 3 objective decides *which* ranks move;
    /// this bounds *how many*.
    pub budget_frac: f64,
    /// Per-migration cost penalty α forwarded to the re-solver.
    pub alpha: f64,
    /// This daemon's shard index in a federation (`None`: unsharded).
    /// Placements homed elsewhere are deferred, never repaired here.
    pub shard: Option<usize>,
}

impl Default for ReconcilerConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(500),
            threshold: 1,
            budget_frac: 0.25,
            alpha: 0.0,
            shard: None,
        }
    }
}

/// One placement under reconciler watch: everything needed to re-issue
/// its mapping question plus where it currently runs.
#[derive(Debug, Clone)]
pub struct WatchedPlacement {
    /// Caller-chosen identity; re-watching the same key replaces the
    /// entry.
    pub key: String,
    /// The communication pattern as `src,dst,bytes,msgs` CSV.
    pub pattern_csv: String,
    /// Optional `process,site` pin constraints.
    pub constraints_csv: Option<String>,
    /// The current process → site assignment (updated in place after
    /// every accepted repair).
    pub mapping: Vec<usize>,
    /// The live inventory lease backing this placement, rebooked on
    /// repair. `None` watches advisorily (diffs published, inventory
    /// untouched).
    pub lease: Option<u64>,
    /// Calibration spec forwarded to the re-solver (cache-keyed, so
    /// repeated repairs reuse the campaign).
    pub calibration: CalibSpec,
    /// Home shard in a federation (`None`: local). A placement homed
    /// on a different shard than the reconciler's is deferred.
    pub home_shard: Option<usize>,
}

impl WatchedPlacement {
    /// A local, unconstrained, lease-less placement.
    pub fn new(
        key: impl Into<String>,
        pattern_csv: impl Into<String>,
        mapping: Vec<usize>,
    ) -> Self {
        Self {
            key: key.into(),
            pattern_csv: pattern_csv.into(),
            mapping,
            constraints_csv: None,
            lease: None,
            calibration: CalibSpec::default(),
            home_shard: None,
        }
    }
}

/// The drift levels a tick compares against the previous trigger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DriftSnapshot {
    expired_leases: u64,
    capacity_changes: u64,
    staleness: u64,
}

/// What one [`Reconciler::tick`] did.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// The drift score this tick observed (new drift since the last
    /// triggering tick).
    pub drift_score: u64,
    /// Diffs published by repairs that actually moved ranks.
    pub diffs: Vec<RemapDiffResponse>,
    /// Placements skipped because they are homed on another shard.
    pub deferred: usize,
    /// Placements dropped because their lease died (expired or
    /// released) — there is nothing left to migrate.
    pub evicted: Vec<String>,
}

/// The drift-watching control loop around one [`MappingService`].
pub struct Reconciler {
    service: Arc<MappingService>,
    config: ReconcilerConfig,
    watched: Mutex<Vec<WatchedPlacement>>,
    last: Mutex<DriftSnapshot>,
    ticks: AtomicU64,
    remaps: AtomicU64,
    stopped: AtomicBool,
}

impl Reconciler {
    /// A reconciler around `service`. Nothing runs until
    /// [`Reconciler::tick`] is called (or [`Reconciler::spawn`] starts
    /// calling it).
    pub fn new(service: Arc<MappingService>, config: ReconcilerConfig) -> Arc<Self> {
        Arc::new(Self {
            service,
            config,
            watched: Mutex::new(Vec::new()),
            last: Mutex::new(DriftSnapshot::default()),
            ticks: AtomicU64::new(0),
            remaps: AtomicU64::new(0),
            stopped: AtomicBool::new(false),
        })
    }

    /// Register (or replace, by key) a placement to watch.
    pub fn watch(&self, placement: WatchedPlacement) {
        let mut watched = self.watched.lock().expect("watch lock");
        if let Some(existing) = watched.iter_mut().find(|w| w.key == placement.key) {
            *existing = placement;
        } else {
            watched.push(placement);
        }
    }

    /// Stop watching `key`. Unknown keys are a no-op.
    pub fn unwatch(&self, key: &str) {
        self.watched
            .lock()
            .expect("watch lock")
            .retain(|w| w.key != key);
    }

    /// Snapshot of a watched placement's current assignment (tests and
    /// callers read back what the reconciler migrated to).
    pub fn watched_mapping(&self, key: &str) -> Option<Vec<usize>> {
        self.watched
            .lock()
            .expect("watch lock")
            .iter()
            .find(|w| w.key == key)
            .map(|w| w.mapping.clone())
    }

    /// Ticks run so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Repairs that moved at least one rank.
    pub fn remaps(&self) -> u64 {
        self.remaps.load(Ordering::Relaxed)
    }

    /// One deterministic control-loop iteration: read the drift
    /// signals, score them against the threshold, repair every watched
    /// placement when triggered. Everything [`Reconciler::spawn`] does,
    /// as a plain call — drive it from a test with a
    /// [`VirtualClock`](crate::clock::VirtualClock) and the outcome is
    /// a pure function of the scenario.
    pub fn tick(&self) -> TickReport {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let drift: DriftCounters = self.service.inventory().drift_counters();
        let staleness = self.service.calibration_staleness();
        let now = DriftSnapshot {
            expired_leases: drift.expired_leases,
            capacity_changes: drift.capacity_changes,
            staleness,
        };
        let last = *self.last.lock().expect("drift lock");
        let score = (now.expired_leases - last.expired_leases)
            + (now.capacity_changes - last.capacity_changes)
            + now.staleness.saturating_sub(last.staleness);
        let mut report = TickReport {
            drift_score: score,
            ..TickReport::default()
        };
        if score < self.config.threshold {
            return report;
        }
        // The score is consumed by this trigger: the next tick measures
        // drift accumulated *after* it.
        *self.last.lock().expect("drift lock") = now;

        let snapshot: Vec<WatchedPlacement> = self.watched.lock().expect("watch lock").clone();
        for placement in snapshot {
            if placement.home_shard.is_some() && placement.home_shard != self.config.shard {
                report.deferred += 1;
                continue;
            }
            #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
            let budget =
                (placement.mapping.len() as f64 * self.config.budget_frac.max(0.0)).ceil() as u64;
            let mut request = RemapRequest::new(
                format!("reconcile-{}", placement.key),
                placement.pattern_csv.clone(),
                placement.mapping.clone(),
            );
            request.constraints_csv = placement.constraints_csv.clone();
            request.budget = Some(budget);
            request.alpha = self.config.alpha;
            request.calibration = placement.calibration.clone();
            request.lease = placement.lease;
            match self.service.handle_remap(&request, TraceScope::off()) {
                Response::RemapDiff(diff) => {
                    if !diff.moved.is_empty() {
                        self.remaps.fetch_add(1, Ordering::Relaxed);
                        let mut watched = self.watched.lock().expect("watch lock");
                        if let Some(w) = watched.iter_mut().find(|w| w.key == placement.key) {
                            w.mapping = diff.mapping.clone();
                        }
                        drop(watched);
                        report.diffs.push(diff);
                    }
                }
                Response::Error(e) if e.code == ErrorCode::UnknownLease => {
                    // The lease died under us — the placement no longer
                    // holds nodes, so there is nothing to migrate.
                    self.unwatch(&placement.key);
                    report.evicted.push(placement.key);
                }
                // Transient refusals (inventory shifted mid-repair,
                // daemon draining): leave the placement watched, the
                // next triggering tick retries against fresh state.
                Response::Error(_) => {}
                other => unreachable!("remap answered with {other:?}"),
            }
        }
        report
    }

    /// Ask the background thread (if any) to exit after its current
    /// tick.
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
    }

    /// Run the control loop on a background thread: tick every
    /// `config.interval` until [`Reconciler::stop`]. The sleep is
    /// sliced so `stop` is honored promptly even with long intervals.
    pub fn spawn(self: &Arc<Self>) -> JoinHandle<()> {
        let this = Arc::clone(self);
        std::thread::Builder::new()
            .name("geomap-reconciler".into())
            .spawn(move || {
                while !this.stopped.load(Ordering::SeqCst) {
                    this.tick();
                    let mut slept = Duration::ZERO;
                    let slice = Duration::from_millis(20).min(this.config.interval);
                    while slept < this.config.interval && !this.stopped.load(Ordering::SeqCst) {
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            })
            .expect("spawn reconciler thread")
    }
}

impl std::fmt::Debug for Reconciler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reconciler")
            .field("watched", &self.watched.lock().expect("watch lock").len())
            .field("ticks", &self.ticks())
            .field("remaps", &self.remaps())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::service::ServiceConfig;
    use geonet::{GeoCoord, Site, SiteNetwork, SquareMatrix};

    fn network(m: usize, cap: usize) -> SiteNetwork {
        let sites = (0..m)
            .map(|k| Site::new(format!("s{k}"), GeoCoord::new(k as f64, 0.0), cap))
            .collect();
        let lt = SquareMatrix::from_fn(m, |a, b| {
            if a == b {
                1e-5
            } else {
                1e-3 * (1 + a + b) as f64
            }
        });
        let bt = SquareMatrix::from_fn(m, |a, b| {
            if a == b {
                1e10
            } else {
                1e7 / (1 + a + b) as f64
            }
        });
        SiteNetwork::new(sites, lt, bt)
    }

    fn ring_csv(n: usize) -> String {
        let mut s = String::from("src,dst,bytes,msgs\n");
        for i in 0..n {
            s.push_str(&format!("{},{},{},8\n", i, (i + 1) % n, 64 * 1024));
        }
        s
    }

    fn harness() -> (Arc<VirtualClock>, Arc<MappingService>) {
        let clock = Arc::new(VirtualClock::new());
        let service = Arc::new(MappingService::new(
            network(3, 4),
            ServiceConfig {
                clock: Arc::clone(&clock) as Arc<dyn crate::clock::Clock>,
                record_hists: false,
                ..ServiceConfig::default()
            },
        ));
        (clock, service)
    }

    #[test]
    fn quiet_world_never_triggers() {
        let (_clock, service) = harness();
        let rec = Reconciler::new(Arc::clone(&service), ReconcilerConfig::default());
        rec.watch(WatchedPlacement::new(
            "p",
            ring_csv(6),
            vec![0, 0, 1, 1, 2, 2],
        ));
        for _ in 0..5 {
            let report = rec.tick();
            assert_eq!(report.drift_score, 0);
            assert!(report.diffs.is_empty());
        }
        assert_eq!(rec.remaps(), 0);
        assert_eq!(rec.ticks(), 5);
    }

    #[test]
    fn expired_lease_drift_triggers_a_repair() {
        let (clock, service) = harness();
        let rec = Reconciler::new(Arc::clone(&service), ReconcilerConfig::default());
        // A scattered placement the repair can improve (ring split
        // across distant sites), plus an unrelated short-TTL lease
        // whose expiry is the drift signal.
        rec.watch(WatchedPlacement::new(
            "app",
            ring_csv(6),
            vec![0, 1, 2, 0, 1, 2],
        ));
        service
            .inventory()
            .reserve(&[1, 0, 0], Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(rec.tick().drift_score, 0, "live lease is not drift");
        clock.advance_ms(60);
        let report = rec.tick();
        assert_eq!(report.drift_score, 1);
        assert_eq!(report.diffs.len(), 1);
        let diff = &report.diffs[0];
        assert!(diff.new_cost <= diff.old_cost);
        assert_eq!(diff.migrations as usize, diff.moved.len());
        // Budget: 25% of 6 ranks, rounded up = 2.
        assert!(diff.migrations <= 2, "budget violated: {}", diff.migrations);
        // The watched mapping advanced to the repaired one.
        assert_eq!(rec.watched_mapping("app").unwrap(), diff.mapping);
        assert_eq!(rec.remaps(), 1);
        // Drift consumed: the next tick is quiet.
        assert_eq!(rec.tick().drift_score, 0);
    }

    #[test]
    fn capacity_change_triggers_and_leased_placement_is_rebooked() {
        let (_clock, service) = harness();
        let rec = Reconciler::new(Arc::clone(&service), ReconcilerConfig::default());
        let mapping = vec![0, 1, 2, 0, 1, 2];
        let counts = vec![2, 2, 2];
        let lease = service.inventory().reserve(&counts, None).unwrap();
        let mut placement = WatchedPlacement::new("app", ring_csv(6), mapping);
        placement.lease = Some(lease);
        rec.watch(placement);
        service.inventory().set_capacity(0, 6);
        let report = rec.tick();
        assert_eq!(report.drift_score, 1);
        if let Some(diff) = report.diffs.first() {
            // The lease followed the migration.
            assert_eq!(diff.lease, Some(lease));
            let held = service.inventory().lease_counts(lease).unwrap();
            let mut expect = vec![0usize; 3];
            for &s in &diff.mapping {
                expect[s] += 1;
            }
            assert_eq!(held, expect);
        }
        // Conservation survives the rebook.
        let (free, leased) = service.inventory().ledger();
        for ((f, l), c) in free
            .iter()
            .zip(&leased)
            .zip(service.inventory().capacities())
        {
            assert_eq!(f + l, c);
        }
    }

    #[test]
    fn dead_lease_evicts_the_placement() {
        let (clock, service) = harness();
        let rec = Reconciler::new(Arc::clone(&service), ReconcilerConfig::default());
        let lease = service
            .inventory()
            .reserve(&[2, 2, 2], Some(Duration::from_millis(10)))
            .unwrap();
        let mut placement = WatchedPlacement::new("doomed", ring_csv(6), vec![0, 1, 2, 0, 1, 2]);
        placement.lease = Some(lease);
        rec.watch(placement);
        clock.advance_ms(20);
        let report = rec.tick();
        assert_eq!(report.evicted, vec!["doomed".to_string()]);
        assert!(rec.watched_mapping("doomed").is_none());
    }

    #[test]
    fn foreign_shard_placements_are_deferred() {
        let (_clock, service) = harness();
        let rec = Reconciler::new(
            Arc::clone(&service),
            ReconcilerConfig {
                shard: Some(0),
                ..ReconcilerConfig::default()
            },
        );
        let mut home = WatchedPlacement::new("home", ring_csv(6), vec![0, 1, 2, 0, 1, 2]);
        home.home_shard = Some(0);
        let mut foreign = WatchedPlacement::new("foreign", ring_csv(6), vec![0, 1, 2, 0, 1, 2]);
        foreign.home_shard = Some(1);
        rec.watch(home);
        rec.watch(foreign);
        service.inventory().set_capacity(0, 5);
        let report = rec.tick();
        assert_eq!(report.deferred, 1);
        // The foreign placement's mapping never changed.
        assert_eq!(
            rec.watched_mapping("foreign").unwrap(),
            vec![0, 1, 2, 0, 1, 2]
        );
    }

    #[test]
    fn rewatching_a_key_replaces_it() {
        let (_clock, service) = harness();
        let rec = Reconciler::new(service, ReconcilerConfig::default());
        rec.watch(WatchedPlacement::new("k", ring_csv(4), vec![0, 0, 1, 1]));
        rec.watch(WatchedPlacement::new("k", ring_csv(4), vec![1, 1, 0, 0]));
        assert_eq!(rec.watched_mapping("k").unwrap(), vec![1, 1, 0, 0]);
        rec.unwatch("k");
        assert!(rec.watched_mapping("k").is_none());
    }
}
