//! The transport seam: how request/response messages travel, separated
//! from *what* they mean — so failure can be injected deterministically.
//!
//! The daemon speaks two wire formats on one port — v1 JSON lines and
//! v2 binary frames ([`crate::frame`]), told apart by the first byte.
//! Everything the client layer needs from a connection is "send one
//! complete message, receive one complete message", where a message is
//! a JSON line (newline excluded — line framing belongs to the
//! transport) or an entire binary frame. This module pins that down as
//! the [`Transport`] trait plus a [`Connector`] that makes transports
//! and knows which [`WireFormat`] to encode requests in, with three
//! implementations:
//!
//! * [`TcpTransport`] / [`TcpConnector`] — the real thing, extracted
//!   from [`ServiceClient`](crate::client::ServiceClient);
//! * [`LoopbackTransport`] / [`LoopbackConnector`] — an in-process
//!   "wire" that feeds messages straight into a [`MappingService`]; no
//!   sockets, no threads, fully deterministic;
//! * [`FaultyTransport`] / [`FaultyConnector`] — a wrapper around any
//!   of the above that injects failures scripted by a [`FaultPlan`]:
//!   connect refusal, read/write timeout, partial write, garbled
//!   message, mid-response disconnect, injected latency.
//!
//! Because the seam carries raw message bytes, every fault applies to
//! both protocols unchanged: a garbled v1 line fails JSON parsing, a
//! garbled v2 frame fails frame decoding, and the client classifies
//! both the same way. Every fault comes from the plan — a fixed script
//! or a seeded stream from the vendored deterministic RNG — and time is
//! *virtual*: the plan carries a millisecond clock that injected
//! latency and retry backoff advance, so a chaos run with thousands of
//! timeouts finishes in microseconds of wall time and is bit-identical
//! across runs.
//!
//! Error classification matters for retry safety. A
//! [`TransportError::Unreachable`] means the request provably never
//! reached the server; [`TransportError::SendUnknown`] and
//! [`TransportError::ResponseLost`] are *ambiguous* — the server may
//! have applied the request (reserved inventory!) before the failure,
//! which is exactly why retried `map` requests carry an idempotency key
//! (see [`crate::client::RetryingClient`]).

use crate::frame::{Frame, FRAME_HEADER_BYTES, FRAME_MAGIC, MAX_FRAME_BYTES};
use crate::proto::Request;
use crate::service::MappingService;
use crate::wire::WireFormat;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Why a transport operation failed, classified by what the client may
/// safely conclude about the request's fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No connection could be established: the request was never sent.
    /// Retrying cannot duplicate work.
    Unreachable(String),
    /// The send failed partway (write error, timeout, partial write):
    /// the server may or may not have received a complete request.
    SendUnknown(String),
    /// The request was sent but no usable response arrived (timeout,
    /// disconnect, lost bytes): the server most likely *did* process it.
    ResponseLost(String),
}

impl TransportError {
    /// True when the server may have applied the request even though
    /// the client saw a failure — the case only idempotency makes
    /// retry-safe.
    pub fn is_ambiguous(&self) -> bool {
        !matches!(self, TransportError::Unreachable(_))
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Unreachable(m)
            | TransportError::SendUnknown(m)
            | TransportError::ResponseLost(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// One bidirectional message channel to a mapping service. A message
/// is one complete wire unit: a JSON line without its newline, or an
/// entire binary frame (header + payload).
pub trait Transport {
    /// Send one request message.
    fn send_msg(&mut self, msg: &[u8]) -> Result<(), TransportError>;
    /// Receive one response message.
    fn recv_msg(&mut self) -> Result<Vec<u8>, TransportError>;
}

/// Makes transports, and owns how a retrying client waits between
/// attempts — the faulty connector advances the plan's virtual clock
/// instead of sleeping, keeping chaos tests instant and wall-clock-free.
pub trait Connector {
    /// The transport this connector produces.
    type Conn: Transport;
    /// Establish a fresh connection.
    fn connect(&mut self) -> Result<Self::Conn, TransportError>;
    /// The format requests should be encoded in on this connector's
    /// transports (responses are always sniffed from their first byte).
    fn format(&self) -> WireFormat {
        WireFormat::V1Json
    }
    /// Wait out a retry backoff pause.
    fn backoff(&mut self, pause: Duration) {
        std::thread::sleep(pause);
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// The real transport: a connected TCP stream. Sends messages in its
/// configured [`WireFormat`] (adding the `\n` for v1 lines); receives
/// by sniffing each message's first byte, so mixed responses — e.g. a
/// v1-encoded admission rejection answered before the server saw any
/// client byte — still frame correctly.
#[derive(Debug)]
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    format: WireFormat,
}

impl TcpTransport {
    /// Connect to `addr` (host:port) speaking v1 JSON lines. `timeout`
    /// bounds the connection attempt and every subsequent read/write —
    /// the per-attempt deadline (`None`: OS defaults).
    pub fn connect(addr: &str, timeout: Option<Duration>) -> Result<Self, TransportError> {
        Self::connect_with(addr, timeout, WireFormat::V1Json)
    }

    /// Connect speaking `format`.
    pub fn connect_with(
        addr: &str,
        timeout: Option<Duration>,
        format: WireFormat,
    ) -> Result<Self, TransportError> {
        let unreachable = |m: String| TransportError::Unreachable(m);
        let resolved: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| unreachable(format!("cannot resolve {addr:?}: {e}")))?
            .collect();
        let mut last_err = unreachable(format!("{addr:?} resolved to no addresses"));
        for candidate in resolved {
            let attempt = match timeout {
                Some(t) => TcpStream::connect_timeout(&candidate, t),
                None => TcpStream::connect(candidate),
            };
            match attempt {
                Ok(stream) => {
                    stream
                        .set_read_timeout(timeout)
                        .and_then(|()| stream.set_write_timeout(timeout))
                        .map_err(|e| unreachable(format!("cannot configure socket: {e}")))?;
                    let writer = stream
                        .try_clone()
                        .map_err(|e| unreachable(format!("cannot clone socket: {e}")))?;
                    return Ok(Self {
                        reader: BufReader::new(stream),
                        writer,
                        format,
                    });
                }
                Err(e) => last_err = unreachable(format!("cannot connect to {candidate}: {e}")),
            }
        }
        Err(last_err)
    }

    /// The format requests are encoded in on this connection.
    pub fn format(&self) -> WireFormat {
        self.format
    }
}

impl Transport for TcpTransport {
    fn send_msg(&mut self, msg: &[u8]) -> Result<(), TransportError> {
        let send = |w: &mut TcpStream, bytes: &[u8]| w.write_all(bytes).and_then(|()| w.flush());
        let outcome = match self.format {
            WireFormat::V1Json => {
                let mut framed = Vec::with_capacity(msg.len() + 1);
                framed.extend_from_slice(msg);
                framed.push(b'\n');
                send(&mut self.writer, &framed)
            }
            // v2 frames carry their own length prefix.
            WireFormat::V2Binary => send(&mut self.writer, msg),
        };
        outcome.map_err(|e| TransportError::SendUnknown(format!("cannot send request: {e}")))
    }

    fn recv_msg(&mut self) -> Result<Vec<u8>, TransportError> {
        let lost = |m: String| TransportError::ResponseLost(m);
        let first = loop {
            match self.reader.fill_buf() {
                Ok([]) => {
                    return Err(lost(
                        "server closed the connection without responding".into(),
                    ))
                }
                Ok(buf) => break buf[0],
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(lost(format!("cannot read response: {e}"))),
            }
        };
        if first == FRAME_MAGIC {
            let mut header = [0u8; FRAME_HEADER_BYTES];
            self.reader
                .read_exact(&mut header)
                .map_err(|e| lost(format!("cannot read frame header: {e}")))?;
            let len =
                u32::from_le_bytes(header[11..15].try_into().expect("4 header bytes")) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(lost(format!(
                    "frame payload of {len} bytes exceeds {MAX_FRAME_BYTES}"
                )));
            }
            let mut msg = Vec::with_capacity(FRAME_HEADER_BYTES + len);
            msg.extend_from_slice(&header);
            msg.resize(FRAME_HEADER_BYTES + len, 0);
            self.reader
                .read_exact(&mut msg[FRAME_HEADER_BYTES..])
                .map_err(|e| lost(format!("cannot read frame payload: {e}")))?;
            Ok(msg)
        } else {
            let mut reply = Vec::new();
            match self.reader.read_until(b'\n', &mut reply) {
                Ok(0) => Err(lost(
                    "server closed the connection without responding".into(),
                )),
                Ok(_) => {
                    while reply.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                        reply.pop();
                    }
                    Ok(reply)
                }
                Err(e) => Err(lost(format!("cannot read response: {e}"))),
            }
        }
    }
}

/// Connector producing [`TcpTransport`]s to one address.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    addr: String,
    timeout: Option<Duration>,
    format: WireFormat,
}

impl TcpConnector {
    /// Connector for `addr` speaking v1 JSON lines; `timeout` is the
    /// per-attempt deadline applied to connect and every read/write.
    pub fn new(addr: impl Into<String>, timeout: Option<Duration>) -> Self {
        Self {
            addr: addr.into(),
            timeout,
            format: WireFormat::V1Json,
        }
    }

    /// The same connector speaking `format`.
    pub fn with_format(mut self, format: WireFormat) -> Self {
        self.format = format;
        self
    }
}

impl Connector for TcpConnector {
    type Conn = TcpTransport;

    fn connect(&mut self) -> Result<TcpTransport, TransportError> {
        TcpTransport::connect_with(&self.addr, self.timeout, self.format)
    }

    fn format(&self) -> WireFormat {
        self.format
    }
}

// ---------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------

/// An in-process transport: messages go straight into a
/// [`MappingService`], responses queue up for `recv_msg`. The service
/// side effects (inventory reservations, cache fills, counters) happen
/// at *send* time — exactly the window a lost response leaves open on a
/// real network, which is what the fault matrix needs to reproduce.
/// Sniffs each message's format like the real server, so one loopback
/// serves both protocols.
#[derive(Debug)]
pub struct LoopbackTransport {
    service: Arc<MappingService>,
    pending: VecDeque<Vec<u8>>,
}

impl Transport for LoopbackTransport {
    fn send_msg(&mut self, msg: &[u8]) -> Result<(), TransportError> {
        let reply = if msg.first() == Some(&FRAME_MAGIC) {
            match Frame::decode(msg) {
                Ok((f, _)) => {
                    let response = match crate::frame::decode_request_payload(&f.payload) {
                        Ok(req) => self.service.handle(&req),
                        Err(bad) => self.service.reject(&bad.id, bad.code, bad.message),
                    };
                    crate::frame::encode_response(&response, f.corr_id)
                }
                Err(e) => {
                    let bad =
                        self.service
                            .reject("", crate::proto::ErrorCode::BadRequest, e.to_string());
                    crate::frame::encode_response(&bad, 0)
                }
            }
        } else {
            let line = String::from_utf8_lossy(msg);
            let response = match Request::from_line(&line) {
                Ok(req) => self.service.handle(&req),
                Err(bad) => self.service.reject(&bad.id, bad.code, bad.message),
            };
            response.to_line().into_bytes()
        };
        self.pending.push_back(reply);
        Ok(())
    }

    fn recv_msg(&mut self) -> Result<Vec<u8>, TransportError> {
        self.pending
            .pop_front()
            .ok_or_else(|| TransportError::ResponseLost("no pending response on loopback".into()))
    }
}

/// Connector producing [`LoopbackTransport`]s onto one service.
#[derive(Debug, Clone)]
pub struct LoopbackConnector {
    service: Arc<MappingService>,
    format: WireFormat,
}

impl LoopbackConnector {
    /// Loopback onto `service`, speaking v1 JSON lines.
    pub fn new(service: Arc<MappingService>) -> Self {
        Self {
            service,
            format: WireFormat::V1Json,
        }
    }

    /// The same connector speaking `format`.
    pub fn with_format(mut self, format: WireFormat) -> Self {
        self.format = format;
        self
    }
}

impl Connector for LoopbackConnector {
    type Conn = LoopbackTransport;

    fn connect(&mut self) -> Result<LoopbackTransport, TransportError> {
        Ok(LoopbackTransport {
            service: Arc::clone(&self.service),
            pending: VecDeque::new(),
        })
    }

    fn format(&self) -> WireFormat {
        self.format
    }

    fn backoff(&mut self, _pause: Duration) {
        // Nothing to wait for in-process.
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// One failure to inject into one client attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Let the attempt through untouched.
    None,
    /// Refuse the connection (unambiguous: the request never left).
    ConnectRefused,
    /// The request write times out; delivery unknown.
    WriteTimeout,
    /// Only a prefix of the request message leaves; delivery unknown.
    PartialWrite,
    /// The request is delivered and processed, but the response read
    /// times out — the classic double-reservation window.
    ReadTimeout,
    /// The response arrives corrupted (bit rot / framing damage); the
    /// request was processed.
    GarbledResponse,
    /// The peer disconnects after processing, mid-response.
    DisconnectMidResponse,
    /// The response is delayed by this many *virtual* milliseconds; if
    /// the delay exceeds the attempt budget the response counts as
    /// lost (the request was still processed).
    Latency(u64),
}

impl Fault {
    /// Stable label (fault-matrix logs and bit-identity assertions).
    pub fn label(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::ConnectRefused => "connect_refused",
            Fault::WriteTimeout => "write_timeout",
            Fault::PartialWrite => "partial_write",
            Fault::ReadTimeout => "read_timeout",
            Fault::GarbledResponse => "garbled_response",
            Fault::DisconnectMidResponse => "disconnect_mid_response",
            Fault::Latency(_) => "latency",
        }
    }
}

#[derive(Debug)]
struct PlanState {
    steps: VecDeque<Fault>,
    /// The fault governing the attempt currently in flight, pulled at
    /// connect/send and consumed by the operation it fires on.
    armed: Option<Fault>,
    clock_ms: u64,
    injected: Vec<&'static str>,
}

/// A deterministic schedule of faults, one per client *attempt*, shared
/// between a [`FaultyConnector`] and the transports it makes. When the
/// schedule runs out, everything passes through clean — so a script of
/// `[ReadTimeout]` means "first attempt loses its response, retries
/// succeed".
#[derive(Debug)]
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// A fixed script of per-attempt faults.
    pub fn script(steps: impl IntoIterator<Item = Fault>) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(PlanState {
                steps: steps.into_iter().collect(),
                armed: None,
                clock_ms: 0,
                injected: Vec::new(),
            }),
        })
    }

    /// A seeded random schedule from the vendored deterministic RNG:
    /// `attempts` steps, each faulty with probability `fault_rate`
    /// (uniform over the seven fault kinds; latency draws 1–2000 virtual
    /// ms). Same seed, same schedule, forever.
    pub fn seeded(seed: u64, attempts: usize, fault_rate: f64) -> Arc<Self> {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        assert!((0.0..=1.0).contains(&fault_rate), "fault rate in [0, 1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let steps = (0..attempts)
            .map(|_| {
                if !rng.random_bool(fault_rate) {
                    return Fault::None;
                }
                match rng.random_range(0..7u32) {
                    0 => Fault::ConnectRefused,
                    1 => Fault::WriteTimeout,
                    2 => Fault::PartialWrite,
                    3 => Fault::ReadTimeout,
                    4 => Fault::GarbledResponse,
                    5 => Fault::DisconnectMidResponse,
                    _ => Fault::Latency(rng.random_range(1..2000u64)),
                }
            })
            .collect::<Vec<_>>();
        Self::script(steps)
    }

    /// Arm the next scheduled fault for a fresh attempt (idempotent
    /// while one is already armed).
    fn arm(&self) -> Fault {
        let mut s = self.state.lock().expect("fault plan lock");
        if let Some(f) = s.armed {
            return f;
        }
        let f = s.steps.pop_front().unwrap_or(Fault::None);
        s.armed = Some(f);
        f
    }

    /// Drop the armed fault without recording it as injected: the
    /// attempt died in the inner layer before the fault could fire, and
    /// a fault that never fired must not carry into the next attempt
    /// (that would skew the one-fault-per-attempt schedule).
    fn disarm(&self) {
        self.state.lock().expect("fault plan lock").armed = None;
    }

    /// Consume the armed fault: the operation it fires on has run.
    fn consume(&self) -> Fault {
        let mut s = self.state.lock().expect("fault plan lock");
        let f = s.armed.take().unwrap_or(Fault::None);
        if f != Fault::None {
            s.injected.push(f.label());
        }
        f
    }

    fn advance_clock(&self, ms: u64) {
        self.state.lock().expect("fault plan lock").clock_ms += ms;
    }

    /// The virtual clock: injected latency plus retry backoff, in ms.
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.state.lock().expect("fault plan lock").clock_ms
    }

    /// Labels of every fault actually injected, in order — a
    /// deterministic trace two same-seed runs can be compared on.
    pub fn injected(&self) -> Vec<&'static str> {
        self.state.lock().expect("fault plan lock").injected.clone()
    }
}

/// A [`Connector`] that injects the plan's faults into every attempt
/// and serves retry backoff from the virtual clock (no sleeping).
#[derive(Debug)]
pub struct FaultyConnector<C: Connector> {
    inner: C,
    plan: Arc<FaultPlan>,
    attempt_budget_ms: Option<u64>,
}

impl<C: Connector> FaultyConnector<C> {
    /// Wrap `inner`, drawing one fault per attempt from `plan`.
    pub fn new(inner: C, plan: Arc<FaultPlan>) -> Self {
        Self {
            inner,
            plan,
            attempt_budget_ms: None,
        }
    }

    /// Injected latency above this budget turns into a lost response
    /// (the virtual per-attempt deadline).
    pub fn with_attempt_budget(mut self, budget: Duration) -> Self {
        self.attempt_budget_ms = Some(budget.as_millis() as u64);
        self
    }
}

impl<C: Connector> Connector for FaultyConnector<C> {
    type Conn = FaultyTransport<C::Conn>;

    fn connect(&mut self) -> Result<Self::Conn, TransportError> {
        if self.plan.arm() == Fault::ConnectRefused {
            self.plan.consume();
            return Err(TransportError::Unreachable(
                "injected fault: connection refused".into(),
            ));
        }
        let inner = match self.inner.connect() {
            Ok(conn) => conn,
            Err(e) => {
                // The inner connector failed on its own; the armed fault
                // never fired and must not leak into the next attempt.
                self.plan.disarm();
                return Err(e);
            }
        };
        Ok(FaultyTransport {
            inner,
            plan: Arc::clone(&self.plan),
            attempt_budget_ms: self.attempt_budget_ms,
        })
    }

    fn format(&self) -> WireFormat {
        self.inner.format()
    }

    fn backoff(&mut self, pause: Duration) {
        // Chaos time is virtual: account for the pause, don't take it.
        self.plan.advance_clock(pause.as_millis() as u64);
    }
}

/// A [`Transport`] wrapper applying the armed fault of the current
/// attempt at the operation it targets. Operates on raw message bytes,
/// so the same chaos scripts cover v1 lines and v2 frames.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: Arc<FaultPlan>,
    attempt_budget_ms: Option<u64>,
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send_msg(&mut self, msg: &[u8]) -> Result<(), TransportError> {
        match self.plan.arm() {
            Fault::WriteTimeout => {
                self.plan.consume();
                Err(TransportError::SendUnknown(
                    "injected fault: write timed out".into(),
                ))
            }
            Fault::PartialWrite => {
                // The prefix never forms a complete message (a split
                // line, or a split length prefix), so the server never
                // processes anything: nothing is delivered inward.
                self.plan.consume();
                Err(TransportError::SendUnknown(format!(
                    "injected fault: partial write ({} of {} bytes)",
                    msg.len() / 2,
                    msg.len() + 1
                )))
            }
            Fault::ConnectRefused => {
                // Armed on a reused connection (no connect happened):
                // the peer already closed it under us.
                self.plan.consume();
                Err(TransportError::SendUnknown(
                    "injected fault: connection closed by peer".into(),
                ))
            }
            // Receive-side faults stay armed; the send goes through and
            // the server processes the request.
            _ => self.inner.send_msg(msg),
        }
    }

    fn recv_msg(&mut self) -> Result<Vec<u8>, TransportError> {
        match self.plan.consume() {
            Fault::ReadTimeout => {
                // The server answered; the bytes die on the wire.
                let _ = self.inner.recv_msg();
                Err(TransportError::ResponseLost(
                    "injected fault: read timed out".into(),
                ))
            }
            Fault::DisconnectMidResponse => {
                let _ = self.inner.recv_msg();
                Err(TransportError::ResponseLost(
                    "injected fault: connection reset mid-response".into(),
                ))
            }
            Fault::GarbledResponse => {
                // Bit rot: keep the front half, splice in junk. The v1
                // parser sees broken JSON, the v2 decoder a broken
                // frame — both surface as an unreadable response.
                let msg = self.inner.recv_msg()?;
                let mut garbled = msg[..msg.len() / 2].to_vec();
                garbled.extend_from_slice("\u{fffd}garbled".as_bytes());
                Ok(garbled)
            }
            Fault::Latency(ms) => {
                self.plan.advance_clock(ms);
                if self.attempt_budget_ms.is_some_and(|budget| ms > budget) {
                    let _ = self.inner.recv_msg();
                    return Err(TransportError::ResponseLost(format!(
                        "injected fault: {ms} ms latency exceeded the attempt budget"
                    )));
                }
                self.inner.recv_msg()
            }
            _ => self.inner.recv_msg(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A connector whose first `failures` attempts die inside the inner
    /// layer (the fault plan plays no part in those failures).
    struct FlakyConnector {
        failures: usize,
    }

    struct NullTransport;

    impl Transport for NullTransport {
        fn send_msg(&mut self, _msg: &[u8]) -> Result<(), TransportError> {
            Ok(())
        }
        fn recv_msg(&mut self) -> Result<Vec<u8>, TransportError> {
            Ok(b"{}".to_vec())
        }
    }

    impl Connector for FlakyConnector {
        type Conn = NullTransport;
        fn connect(&mut self) -> Result<NullTransport, TransportError> {
            if self.failures > 0 {
                self.failures -= 1;
                return Err(TransportError::Unreachable("inner connector down".into()));
            }
            Ok(NullTransport)
        }
    }

    /// Regression: an inner connect failure under a non-refusal armed
    /// fault must disarm it — otherwise the fault carries over and the
    /// one-fault-per-attempt schedule silently skews.
    #[test]
    fn inner_connect_failure_does_not_leak_the_armed_fault() {
        let plan = FaultPlan::script([Fault::WriteTimeout, Fault::None]);
        let mut connector = FaultyConnector::new(FlakyConnector { failures: 1 }, Arc::clone(&plan));

        // Attempt 1: WriteTimeout is armed but the inner connect dies
        // first — the fault never fires.
        assert!(connector.connect().is_err());

        // Attempt 2 draws the *next* scheduled fault (None), not the
        // stale WriteTimeout from the failed attempt.
        let mut conn = connector.connect().expect("second attempt connects");
        conn.send_msg(b"x")
            .expect("attempt 2 is scheduled clean; a leaked WriteTimeout would fail this");
        assert_eq!(
            plan.injected(),
            Vec::<&str>::new(),
            "a fault that never fired must not be recorded as injected"
        );
    }

    /// A garbled v2 frame must fail decoding just like a garbled v1
    /// line does — the byte-level fault needs no protocol awareness.
    #[test]
    fn garbling_breaks_both_protocols_identically() {
        struct FixedTransport(Vec<u8>);
        impl Transport for FixedTransport {
            fn send_msg(&mut self, _msg: &[u8]) -> Result<(), TransportError> {
                Ok(())
            }
            fn recv_msg(&mut self) -> Result<Vec<u8>, TransportError> {
                Ok(self.0.clone())
            }
        }
        let response = crate::proto::Response::Shutdown {
            id: "x".into(),
            draining: 3,
        };
        for msg in [
            response.to_line().into_bytes(),
            crate::frame::encode_response(&response, 9),
        ] {
            let plan = FaultPlan::script([Fault::GarbledResponse]);
            let mut t = FaultyTransport {
                inner: FixedTransport(msg),
                plan,
                attempt_budget_ms: None,
            };
            t.plan.arm();
            let garbled = t.recv_msg().expect("garbling yields bytes, not an error");
            assert!(
                WireFormat::decode_response(&garbled).is_err(),
                "garbled message decoded cleanly"
            );
        }
    }
}
