//! The transport seam: how request/response lines travel, separated
//! from *what* they mean — so failure can be injected deterministically.
//!
//! The daemon's wire format is JSON lines; everything the client layer
//! needs from a connection is "send one line, receive one line". This
//! module pins that down as the [`Transport`] trait plus a [`Connector`]
//! that makes transports, with three implementations:
//!
//! * [`TcpTransport`] / [`TcpConnector`] — the real thing, extracted
//!   from [`ServiceClient`](crate::client::ServiceClient);
//! * [`LoopbackTransport`] / [`LoopbackConnector`] — an in-process
//!   "wire" that feeds lines straight into a [`MappingService`]; no
//!   sockets, no threads, fully deterministic;
//! * [`FaultyTransport`] / [`FaultyConnector`] — a wrapper around any
//!   of the above that injects failures scripted by a [`FaultPlan`]:
//!   connect refusal, read/write timeout, partial write, garbled line,
//!   mid-response disconnect, injected latency.
//!
//! Every fault comes from the plan — a fixed script or a seeded stream
//! from the vendored deterministic RNG — and time is *virtual*: the
//! plan carries a millisecond clock that injected latency and retry
//! backoff advance, so a chaos run with thousands of timeouts finishes
//! in microseconds of wall time and is bit-identical across runs.
//!
//! Error classification matters for retry safety. A
//! [`TransportError::Unreachable`] means the request provably never
//! reached the server; [`TransportError::SendUnknown`] and
//! [`TransportError::ResponseLost`] are *ambiguous* — the server may
//! have applied the request (reserved inventory!) before the failure,
//! which is exactly why retried `map` requests carry an idempotency key
//! (see [`crate::client::RetryingClient`]).

use crate::proto::Request;
use crate::service::MappingService;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Why a transport operation failed, classified by what the client may
/// safely conclude about the request's fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No connection could be established: the request was never sent.
    /// Retrying cannot duplicate work.
    Unreachable(String),
    /// The send failed partway (write error, timeout, partial write):
    /// the server may or may not have received a complete request.
    SendUnknown(String),
    /// The request was sent but no usable response arrived (timeout,
    /// disconnect, lost bytes): the server most likely *did* process it.
    ResponseLost(String),
}

impl TransportError {
    /// True when the server may have applied the request even though
    /// the client saw a failure — the case only idempotency makes
    /// retry-safe.
    pub fn is_ambiguous(&self) -> bool {
        !matches!(self, TransportError::Unreachable(_))
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Unreachable(m)
            | TransportError::SendUnknown(m)
            | TransportError::ResponseLost(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// One bidirectional JSON-lines channel to a mapping service.
pub trait Transport {
    /// Send one request line (no trailing newline).
    fn send_line(&mut self, line: &str) -> Result<(), TransportError>;
    /// Receive one response line (no trailing newline).
    fn recv_line(&mut self) -> Result<String, TransportError>;
}

/// Makes transports, and owns how a retrying client waits between
/// attempts — the faulty connector advances the plan's virtual clock
/// instead of sleeping, keeping chaos tests instant and wall-clock-free.
pub trait Connector {
    /// The transport this connector produces.
    type Conn: Transport;
    /// Establish a fresh connection.
    fn connect(&mut self) -> Result<Self::Conn, TransportError>;
    /// Wait out a retry backoff pause.
    fn backoff(&mut self, pause: Duration) {
        std::thread::sleep(pause);
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// The real transport: a connected TCP stream with line framing.
#[derive(Debug)]
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpTransport {
    /// Connect to `addr` (host:port). `timeout` bounds the connection
    /// attempt and every subsequent read/write — the per-attempt
    /// deadline (`None`: OS defaults).
    pub fn connect(addr: &str, timeout: Option<Duration>) -> Result<Self, TransportError> {
        let unreachable = |m: String| TransportError::Unreachable(m);
        let resolved: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| unreachable(format!("cannot resolve {addr:?}: {e}")))?
            .collect();
        let mut last_err = unreachable(format!("{addr:?} resolved to no addresses"));
        for candidate in resolved {
            let attempt = match timeout {
                Some(t) => TcpStream::connect_timeout(&candidate, t),
                None => TcpStream::connect(candidate),
            };
            match attempt {
                Ok(stream) => {
                    stream
                        .set_read_timeout(timeout)
                        .and_then(|()| stream.set_write_timeout(timeout))
                        .map_err(|e| unreachable(format!("cannot configure socket: {e}")))?;
                    let writer = stream
                        .try_clone()
                        .map_err(|e| unreachable(format!("cannot clone socket: {e}")))?;
                    return Ok(Self {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) => last_err = unreachable(format!("cannot connect to {candidate}: {e}")),
            }
        }
        Err(last_err)
    }
}

impl Transport for TcpTransport {
    fn send_line(&mut self, line: &str) -> Result<(), TransportError> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer
            .write_all(framed.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| TransportError::SendUnknown(format!("cannot send request: {e}")))
    }

    fn recv_line(&mut self) -> Result<String, TransportError> {
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => Err(TransportError::ResponseLost(
                "server closed the connection without responding".into(),
            )),
            Ok(_) => {
                while reply.ends_with('\n') || reply.ends_with('\r') {
                    reply.pop();
                }
                Ok(reply)
            }
            Err(e) => Err(TransportError::ResponseLost(format!(
                "cannot read response: {e}"
            ))),
        }
    }
}

/// Connector producing [`TcpTransport`]s to one address.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    addr: String,
    timeout: Option<Duration>,
}

impl TcpConnector {
    /// Connector for `addr`; `timeout` is the per-attempt deadline
    /// applied to connect and every read/write.
    pub fn new(addr: impl Into<String>, timeout: Option<Duration>) -> Self {
        Self {
            addr: addr.into(),
            timeout,
        }
    }
}

impl Connector for TcpConnector {
    type Conn = TcpTransport;

    fn connect(&mut self) -> Result<TcpTransport, TransportError> {
        TcpTransport::connect(&self.addr, self.timeout)
    }
}

// ---------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------

/// An in-process transport: lines go straight into a
/// [`MappingService`], responses queue up for `recv_line`. The service
/// side effects (inventory reservations, cache fills, counters) happen
/// at *send* time — exactly the window a lost response leaves open on a
/// real network, which is what the fault matrix needs to reproduce.
#[derive(Debug)]
pub struct LoopbackTransport {
    service: Arc<MappingService>,
    pending: VecDeque<String>,
}

impl Transport for LoopbackTransport {
    fn send_line(&mut self, line: &str) -> Result<(), TransportError> {
        let response = match Request::from_line(line) {
            Ok(req) => self.service.handle(&req),
            Err(bad) => self.service.reject(&bad.id, bad.code, bad.message),
        };
        self.pending.push_back(response.to_line());
        Ok(())
    }

    fn recv_line(&mut self) -> Result<String, TransportError> {
        self.pending
            .pop_front()
            .ok_or_else(|| TransportError::ResponseLost("no pending response on loopback".into()))
    }
}

/// Connector producing [`LoopbackTransport`]s onto one service.
#[derive(Debug, Clone)]
pub struct LoopbackConnector {
    service: Arc<MappingService>,
}

impl LoopbackConnector {
    /// Loopback onto `service`.
    pub fn new(service: Arc<MappingService>) -> Self {
        Self { service }
    }
}

impl Connector for LoopbackConnector {
    type Conn = LoopbackTransport;

    fn connect(&mut self) -> Result<LoopbackTransport, TransportError> {
        Ok(LoopbackTransport {
            service: Arc::clone(&self.service),
            pending: VecDeque::new(),
        })
    }

    fn backoff(&mut self, _pause: Duration) {
        // Nothing to wait for in-process.
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// One failure to inject into one client attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Let the attempt through untouched.
    None,
    /// Refuse the connection (unambiguous: the request never left).
    ConnectRefused,
    /// The request write times out; delivery unknown.
    WriteTimeout,
    /// Only a prefix of the request line leaves; delivery unknown.
    PartialWrite,
    /// The request is delivered and processed, but the response read
    /// times out — the classic double-reservation window.
    ReadTimeout,
    /// The response arrives corrupted (bit rot / framing damage); the
    /// request was processed.
    GarbledResponse,
    /// The peer disconnects after processing, mid-response.
    DisconnectMidResponse,
    /// The response is delayed by this many *virtual* milliseconds; if
    /// the delay exceeds the attempt budget the response counts as
    /// lost (the request was still processed).
    Latency(u64),
}

impl Fault {
    /// Stable label (fault-matrix logs and bit-identity assertions).
    pub fn label(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::ConnectRefused => "connect_refused",
            Fault::WriteTimeout => "write_timeout",
            Fault::PartialWrite => "partial_write",
            Fault::ReadTimeout => "read_timeout",
            Fault::GarbledResponse => "garbled_response",
            Fault::DisconnectMidResponse => "disconnect_mid_response",
            Fault::Latency(_) => "latency",
        }
    }
}

#[derive(Debug)]
struct PlanState {
    steps: VecDeque<Fault>,
    /// The fault governing the attempt currently in flight, pulled at
    /// connect/send and consumed by the operation it fires on.
    armed: Option<Fault>,
    clock_ms: u64,
    injected: Vec<&'static str>,
}

/// A deterministic schedule of faults, one per client *attempt*, shared
/// between a [`FaultyConnector`] and the transports it makes. When the
/// schedule runs out, everything passes through clean — so a script of
/// `[ReadTimeout]` means "first attempt loses its response, retries
/// succeed".
#[derive(Debug)]
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// A fixed script of per-attempt faults.
    pub fn script(steps: impl IntoIterator<Item = Fault>) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(PlanState {
                steps: steps.into_iter().collect(),
                armed: None,
                clock_ms: 0,
                injected: Vec::new(),
            }),
        })
    }

    /// A seeded random schedule from the vendored deterministic RNG:
    /// `attempts` steps, each faulty with probability `fault_rate`
    /// (uniform over the seven fault kinds; latency draws 1–2000 virtual
    /// ms). Same seed, same schedule, forever.
    pub fn seeded(seed: u64, attempts: usize, fault_rate: f64) -> Arc<Self> {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        assert!((0.0..=1.0).contains(&fault_rate), "fault rate in [0, 1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let steps = (0..attempts)
            .map(|_| {
                if !rng.random_bool(fault_rate) {
                    return Fault::None;
                }
                match rng.random_range(0..7u32) {
                    0 => Fault::ConnectRefused,
                    1 => Fault::WriteTimeout,
                    2 => Fault::PartialWrite,
                    3 => Fault::ReadTimeout,
                    4 => Fault::GarbledResponse,
                    5 => Fault::DisconnectMidResponse,
                    _ => Fault::Latency(rng.random_range(1..2000u64)),
                }
            })
            .collect::<Vec<_>>();
        Self::script(steps)
    }

    /// Arm the next scheduled fault for a fresh attempt (idempotent
    /// while one is already armed).
    fn arm(&self) -> Fault {
        let mut s = self.state.lock().expect("fault plan lock");
        if let Some(f) = s.armed {
            return f;
        }
        let f = s.steps.pop_front().unwrap_or(Fault::None);
        s.armed = Some(f);
        f
    }

    /// Drop the armed fault without recording it as injected: the
    /// attempt died in the inner layer before the fault could fire, and
    /// a fault that never fired must not carry into the next attempt
    /// (that would skew the one-fault-per-attempt schedule).
    fn disarm(&self) {
        self.state.lock().expect("fault plan lock").armed = None;
    }

    /// Consume the armed fault: the operation it fires on has run.
    fn consume(&self) -> Fault {
        let mut s = self.state.lock().expect("fault plan lock");
        let f = s.armed.take().unwrap_or(Fault::None);
        if f != Fault::None {
            s.injected.push(f.label());
        }
        f
    }

    fn advance_clock(&self, ms: u64) {
        self.state.lock().expect("fault plan lock").clock_ms += ms;
    }

    /// The virtual clock: injected latency plus retry backoff, in ms.
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.state.lock().expect("fault plan lock").clock_ms
    }

    /// Labels of every fault actually injected, in order — a
    /// deterministic trace two same-seed runs can be compared on.
    pub fn injected(&self) -> Vec<&'static str> {
        self.state.lock().expect("fault plan lock").injected.clone()
    }
}

/// A [`Connector`] that injects the plan's faults into every attempt
/// and serves retry backoff from the virtual clock (no sleeping).
#[derive(Debug)]
pub struct FaultyConnector<C: Connector> {
    inner: C,
    plan: Arc<FaultPlan>,
    attempt_budget_ms: Option<u64>,
}

impl<C: Connector> FaultyConnector<C> {
    /// Wrap `inner`, drawing one fault per attempt from `plan`.
    pub fn new(inner: C, plan: Arc<FaultPlan>) -> Self {
        Self {
            inner,
            plan,
            attempt_budget_ms: None,
        }
    }

    /// Injected latency above this budget turns into a lost response
    /// (the virtual per-attempt deadline).
    pub fn with_attempt_budget(mut self, budget: Duration) -> Self {
        self.attempt_budget_ms = Some(budget.as_millis() as u64);
        self
    }
}

impl<C: Connector> Connector for FaultyConnector<C> {
    type Conn = FaultyTransport<C::Conn>;

    fn connect(&mut self) -> Result<Self::Conn, TransportError> {
        if self.plan.arm() == Fault::ConnectRefused {
            self.plan.consume();
            return Err(TransportError::Unreachable(
                "injected fault: connection refused".into(),
            ));
        }
        let inner = match self.inner.connect() {
            Ok(conn) => conn,
            Err(e) => {
                // The inner connector failed on its own; the armed fault
                // never fired and must not leak into the next attempt.
                self.plan.disarm();
                return Err(e);
            }
        };
        Ok(FaultyTransport {
            inner,
            plan: Arc::clone(&self.plan),
            attempt_budget_ms: self.attempt_budget_ms,
        })
    }

    fn backoff(&mut self, pause: Duration) {
        // Chaos time is virtual: account for the pause, don't take it.
        self.plan.advance_clock(pause.as_millis() as u64);
    }
}

/// A [`Transport`] wrapper applying the armed fault of the current
/// attempt at the operation it targets.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: Arc<FaultPlan>,
    attempt_budget_ms: Option<u64>,
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send_line(&mut self, line: &str) -> Result<(), TransportError> {
        match self.plan.arm() {
            Fault::WriteTimeout => {
                self.plan.consume();
                Err(TransportError::SendUnknown(
                    "injected fault: write timed out".into(),
                ))
            }
            Fault::PartialWrite => {
                // The prefix never forms a complete line, so the server
                // never processes anything: nothing is delivered inward.
                self.plan.consume();
                Err(TransportError::SendUnknown(format!(
                    "injected fault: partial write ({} of {} bytes)",
                    line.len() / 2,
                    line.len() + 1
                )))
            }
            Fault::ConnectRefused => {
                // Armed on a reused connection (no connect happened):
                // the peer already closed it under us.
                self.plan.consume();
                Err(TransportError::SendUnknown(
                    "injected fault: connection closed by peer".into(),
                ))
            }
            // Receive-side faults stay armed; the send goes through and
            // the server processes the request.
            _ => self.inner.send_line(line),
        }
    }

    fn recv_line(&mut self) -> Result<String, TransportError> {
        match self.plan.consume() {
            Fault::ReadTimeout => {
                // The server answered; the bytes die on the wire.
                let _ = self.inner.recv_line();
                Err(TransportError::ResponseLost(
                    "injected fault: read timed out".into(),
                ))
            }
            Fault::DisconnectMidResponse => {
                let _ = self.inner.recv_line();
                Err(TransportError::ResponseLost(
                    "injected fault: connection reset mid-response".into(),
                ))
            }
            Fault::GarbledResponse => {
                let line = self.inner.recv_line()?;
                let mut keep = line.len() / 2;
                while keep > 0 && !line.is_char_boundary(keep) {
                    keep -= 1;
                }
                Ok(format!("{}\u{fffd}garbled", &line[..keep]))
            }
            Fault::Latency(ms) => {
                self.plan.advance_clock(ms);
                if self.attempt_budget_ms.is_some_and(|budget| ms > budget) {
                    let _ = self.inner.recv_line();
                    return Err(TransportError::ResponseLost(format!(
                        "injected fault: {ms} ms latency exceeded the attempt budget"
                    )));
                }
                self.inner.recv_line()
            }
            _ => self.inner.recv_line(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A connector whose first `failures` attempts die inside the inner
    /// layer (the fault plan plays no part in those failures).
    struct FlakyConnector {
        failures: usize,
    }

    struct NullTransport;

    impl Transport for NullTransport {
        fn send_line(&mut self, _line: &str) -> Result<(), TransportError> {
            Ok(())
        }
        fn recv_line(&mut self) -> Result<String, TransportError> {
            Ok("{}".into())
        }
    }

    impl Connector for FlakyConnector {
        type Conn = NullTransport;
        fn connect(&mut self) -> Result<NullTransport, TransportError> {
            if self.failures > 0 {
                self.failures -= 1;
                return Err(TransportError::Unreachable("inner connector down".into()));
            }
            Ok(NullTransport)
        }
    }

    /// Regression: an inner connect failure under a non-refusal armed
    /// fault must disarm it — otherwise the fault carries over and the
    /// one-fault-per-attempt schedule silently skews.
    #[test]
    fn inner_connect_failure_does_not_leak_the_armed_fault() {
        let plan = FaultPlan::script([Fault::WriteTimeout, Fault::None]);
        let mut connector =
            FaultyConnector::new(FlakyConnector { failures: 1 }, Arc::clone(&plan));

        // Attempt 1: WriteTimeout is armed but the inner connect dies
        // first — the fault never fires.
        assert!(connector.connect().is_err());

        // Attempt 2 draws the *next* scheduled fault (None), not the
        // stale WriteTimeout from the failed attempt.
        let mut conn = connector.connect().expect("second attempt connects");
        conn.send_line("x")
            .expect("attempt 2 is scheduled clean; a leaked WriteTimeout would fail this");
        assert_eq!(
            plan.injected(),
            Vec::<&str>::new(),
            "a fault that never fired must not be recorded as injected"
        );
    }
}
