//! The v2 binary wire format: length-prefixed frames with correlation
//! ids, carrying a fixed-order binary encoding of the [`proto`] types.
//!
//! JSON-lines (v1) pays a parse per request and a `Display` per number;
//! at tens of thousands of requests per second the protocol dominates
//! the solver. v2 frames cut both directions to fixed-width reads:
//!
//! ```text
//! offset  size  field
//! 0       1     magic 0xB2
//! 1       1     frame version (2)
//! 2       1     kind (1 = request, 2 = response)
//! 3       8     correlation id, u64 LE
//! 11      4     payload length, u32 LE (≤ MAX_FRAME_BYTES)
//! 15      …     payload
//! ```
//!
//! The magic byte `0xB2` is a UTF-8 continuation byte, so it can never
//! begin a valid JSON line — a server (or client) can tell the two
//! protocols apart from the first byte of a connection or message and
//! keep speaking v1 to old peers on the same port.
//!
//! Payloads encode the [`Request`]/[`Response`] enums with a leading
//! u8 tag and fixed field order: integers as LE `u64`/`u32`, floats as
//! `f64::to_bits` LE (bit-exact by construction — the differential
//! suite proves decoded v1 and v2 responses identical), strings as
//! u32-length-prefixed UTF-8, options as a presence byte. The decoder
//! is total: any byte sequence yields a value or a typed
//! [`FrameError`], never a panic (`tests/frame_properties.rs`), and the
//! exact bytes are pinned by golden fixtures
//! (`tests/frame_fixtures.rs`).
//!
//! [`proto`]: crate::proto

// The decoder must stay cast-clean: a wire `u64` narrowed with `as`
// silently wraps on 32-bit targets (and under hostile >2^32 values),
// turning a malformed frame into a wrong-but-plausible request. Every
// narrowing goes through `try_from` and errors as `Malformed`.
#![deny(clippy::cast_possible_truncation)]

use crate::proto::{
    CacheTier, CalibSpec, ErrorCode, ErrorResponse, HistSummary, JournalResponse, MapRequest,
    MapResponse, MultilevelSpec, RemapDiffResponse, RemapRequest, Request, Response, StatsDetail,
    StatsResponse, TraceContext, TraceDumpResponse, WireTraceEvent, WireTrack,
};

/// First byte of every v2 frame; never the first byte of UTF-8 JSON.
pub const FRAME_MAGIC: u8 = 0xB2;

/// The binary frame format generation.
pub const FRAME_VERSION: u8 = 2;

/// Fixed frame header size (magic + version + kind + corr id + length).
pub const FRAME_HEADER_BYTES: usize = 15;

/// Longest payload a frame may carry — the binary twin of
/// [`MAX_LINE_BYTES`](crate::server::MAX_LINE_BYTES): a peer declaring
/// more gets a typed error, never an unbounded buffer.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server.
    Request,
    /// Server → client.
    Response,
}

impl FrameKind {
    /// Stable wire byte.
    pub fn code(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
        }
    }

    /// Parse a wire byte.
    pub fn from_code(b: u8) -> Option<Self> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Response),
            _ => None,
        }
    }
}

/// Why bytes failed to decode as a frame (or as a frame's payload).
/// Every variant is a clean error — the decoder never panics and never
/// over-allocates on hostile input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bytes yet: `need` bytes would complete the frame.
    /// The only recoverable variant — a streaming reader waits for
    /// more; everything else means the stream is corrupt.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes the frame needs (header, or header + declared payload).
        need: usize,
    },
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// Declared payload length.
        len: usize,
    },
    /// The first byte is not [`FRAME_MAGIC`].
    BadMagic(u8),
    /// The frame version byte is not [`FRAME_VERSION`].
    BadVersion(u8),
    /// The kind byte is not a known [`FrameKind`].
    BadKind(u8),
    /// The payload is structurally invalid (bad tag, short field,
    /// non-UTF-8 string, trailing bytes, out-of-range enum code).
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            FrameError::Oversized { len } => {
                write!(f, "frame payload of {len} bytes exceeds {MAX_FRAME_BYTES}")
            }
            FrameError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02X} (expected 0xB2)"),
            FrameError::BadVersion(v) => write!(
                f,
                "frame version {v} not supported (this peer speaks v{FRAME_VERSION})"
            ),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Malformed(m) => write!(f, "malformed frame payload: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded frame: header fields plus the raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Request or response.
    pub kind: FrameKind,
    /// Correlation id, echoed by the server so pipelined clients can
    /// match responses to in-flight requests.
    pub corr_id: u64,
    /// The encoded [`Request`]/[`Response`] payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Encode header + payload into wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + self.payload.len());
        out.push(FRAME_MAGIC);
        out.push(FRAME_VERSION);
        out.push(self.kind.code());
        out.extend_from_slice(&self.corr_id.to_le_bytes());
        let len = u32::try_from(self.payload.len()).expect("payload exceeds u32 length prefix");
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decode one frame from the front of `buf`, returning it and the
    /// bytes consumed. [`FrameError::Truncated`] means "feed me more";
    /// any other error means the stream cannot be resynchronized.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        if buf.is_empty() {
            return Err(FrameError::Truncated {
                have: 0,
                need: FRAME_HEADER_BYTES,
            });
        }
        if buf[0] != FRAME_MAGIC {
            return Err(FrameError::BadMagic(buf[0]));
        }
        if buf.len() >= 2 && buf[1] != FRAME_VERSION {
            return Err(FrameError::BadVersion(buf[1]));
        }
        if buf.len() >= 3 && FrameKind::from_code(buf[2]).is_none() {
            return Err(FrameError::BadKind(buf[2]));
        }
        if buf.len() < FRAME_HEADER_BYTES {
            return Err(FrameError::Truncated {
                have: buf.len(),
                need: FRAME_HEADER_BYTES,
            });
        }
        let kind = FrameKind::from_code(buf[2]).expect("kind checked above");
        let corr_id = u64::from_le_bytes(buf[3..11].try_into().expect("8 header bytes"));
        let len = u32::from_le_bytes(buf[11..15].try_into().expect("4 header bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(FrameError::Oversized { len });
        }
        let total = FRAME_HEADER_BYTES + len;
        if buf.len() < total {
            return Err(FrameError::Truncated {
                have: buf.len(),
                need: total,
            });
        }
        Ok((
            Frame {
                kind,
                corr_id,
                payload: buf[FRAME_HEADER_BYTES..total].to_vec(),
            },
            total,
        ))
    }

    /// The correlation id of a partial frame whose header has arrived,
    /// if the magic matches — lets a server echo the right id on an
    /// error response even when the rest of the frame is hopeless.
    pub fn peek_corr_id(buf: &[u8]) -> Option<u64> {
        if buf.len() >= FRAME_HEADER_BYTES && buf[0] == FRAME_MAGIC {
            Some(u64::from_le_bytes(
                buf[3..11].try_into().expect("8 header bytes"),
            ))
        } else {
            None
        }
    }
}

/// Encode a request as a complete v2 frame.
pub fn encode_request(request: &Request, corr_id: u64) -> Vec<u8> {
    Frame {
        kind: FrameKind::Request,
        corr_id,
        payload: request_payload(request),
    }
    .encode()
}

/// Encode a response as a complete v2 frame.
pub fn encode_response(response: &Response, corr_id: u64) -> Vec<u8> {
    Frame {
        kind: FrameKind::Response,
        corr_id,
        payload: response_payload(response),
    }
    .encode()
}

// ---------------------------------------------------------------------
// Payload writer
// ---------------------------------------------------------------------

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { out: Vec::new() }
    }

    fn u8(&mut self, x: u8) {
        self.out.push(x);
    }

    fn bool(&mut self, x: bool) {
        self.out.push(u8::from(x));
    }

    fn u32(&mut self, x: u32) {
        self.out.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.out.extend_from_slice(&x.to_le_bytes());
    }

    fn f64(&mut self, x: f64) {
        self.out.extend_from_slice(&x.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        let len = u32::try_from(s.len()).expect("string exceeds u32 length prefix");
        self.out.extend_from_slice(&len.to_le_bytes());
        self.out.extend_from_slice(s.as_bytes());
    }

    fn opt_u64(&mut self, x: Option<u64>) {
        match x {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }

    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(v) => {
                self.u8(1);
                self.str(v);
            }
            None => self.u8(0),
        }
    }

    fn usize_arr(&mut self, xs: &[usize]) {
        let len = u32::try_from(xs.len()).expect("array exceeds u32 length prefix");
        self.out.extend_from_slice(&len.to_le_bytes());
        for &x in xs {
            self.u64(x as u64);
        }
    }
}

/// The binary payload of a request (tag + fixed field order).
pub fn request_payload(request: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    match request {
        Request::Map(m) => {
            w.u8(1);
            w.str(&m.id);
            w.str(&m.pattern_csv);
            w.opt_u64(m.ranks.map(|r| r as u64));
            w.opt_str(m.constraints_csv.as_deref());
            w.str(&m.algorithm);
            w.u64(m.seed);
            w.u64(m.kappa as u64);
            w.u64(m.samples as u64);
            w.u64(m.calibration.days as u64);
            w.u64(m.calibration.probes_per_day as u64);
            w.f64(m.calibration.noise_cv);
            w.f64(m.calibration.loss_rate);
            w.u64(m.calibration.seed);
            w.opt_u64(m.deadline_ms);
            w.bool(m.reserve);
            w.opt_u64(m.lease_ttl_ms);
            w.bool(m.use_result_cache);
            w.opt_str(m.idempotency_key.as_deref());
            // Optional *trailing* extensions, each opened by a marker
            // byte and appended only when present, in ascending marker
            // order — a request using neither keeps the pre-extension
            // frame layout byte for byte (pinned by the golden
            // fixtures). Decoders accept any suffix of markers by
            // checking `remaining()` before `finish`.
            if let Some(t) = &m.trace {
                w.u8(TRACE_EXT_MARKER);
                w.u64(t.trace_id);
                w.u64(t.parent_span);
                w.bool(t.sampled);
            }
            if let Some(ml) = &m.multilevel {
                w.u8(MULTILEVEL_EXT_MARKER);
                w.u64(ml.coarsen_cutoff as u64);
                w.u64(ml.match_rounds as u64);
                w.u64(ml.refine_passes as u64);
            }
        }
        Request::Release { id, lease } => {
            w.u8(2);
            w.str(id);
            w.u64(*lease);
        }
        Request::Stats { id, detail } => {
            w.u8(3);
            w.str(id);
            // Trailing opt-in flag, absent when false: a plain stats
            // request (and its response) keeps the old byte layout.
            if *detail {
                w.bool(true);
            }
        }
        Request::Shutdown { id } => {
            w.u8(4);
            w.str(id);
        }
        Request::Journal { id, key } => {
            w.u8(5);
            w.str(id);
            w.str(key);
        }
        Request::TraceDump { id } => {
            w.u8(6);
            w.str(id);
        }
        Request::Remap(r) => {
            w.u8(7);
            w.str(&r.id);
            w.str(&r.pattern_csv);
            w.usize_arr(&r.mapping);
            w.opt_str(r.constraints_csv.as_deref());
            w.opt_u64(r.budget);
            w.f64(r.alpha);
            w.u64(r.calibration.days as u64);
            w.u64(r.calibration.probes_per_day as u64);
            w.f64(r.calibration.noise_cv);
            w.f64(r.calibration.loss_rate);
            w.u64(r.calibration.seed);
            w.opt_u64(r.lease);
        }
    }
    w.out
}

/// Marker byte opening the optional trailing trace-context extension
/// on a v2 map-request payload.
const TRACE_EXT_MARKER: u8 = 1;

/// Marker byte opening the optional trailing multilevel-solver
/// extension on a v2 map-request payload.
const MULTILEVEL_EXT_MARKER: u8 = 2;

fn write_hist_summary(w: &mut Writer, h: &HistSummary) {
    w.str(&h.name);
    w.u64(h.count);
    w.u64(h.sum_us);
    w.opt_u64(h.min_us);
    w.opt_u64(h.max_us);
    w.u64(h.p50_us);
    w.u64(h.p90_us);
    w.u64(h.p99_us);
    w.u64(h.p999_us);
    let n = u32::try_from(h.buckets.len()).expect("bucket dump exceeds u32 length prefix");
    w.u32(n);
    for &(i, c) in &h.buckets {
        w.u32(i);
        w.u64(c);
    }
}

fn write_stats_detail(w: &mut Writer, d: &StatsDetail) {
    w.u64(d.hist_schema);
    w.u64(d.queue_depth);
    w.u64(d.max_queue_depth);
    w.usize_arr(&d.leased_nodes);
    let n = u32::try_from(d.hists.len()).expect("histogram set exceeds u32 length prefix");
    w.u32(n);
    for h in &d.hists {
        write_hist_summary(w, h);
    }
    w.u64(d.shards);
}

/// The binary payload of a response (tag + fixed field order).
pub fn response_payload(response: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    match response {
        Response::Map(r) => {
            w.u8(1);
            w.str(&r.id);
            w.usize_arr(&r.mapping);
            w.f64(r.cost);
            w.u8(r.cached.code());
            w.f64(r.queue_wait_s);
            w.f64(r.solve_s);
            w.opt_u64(r.lease);
            w.usize_arr(&r.site_counts);
            w.usize_arr(&r.free_nodes);
            w.bool(r.degraded);
            w.u64(r.staleness);
        }
        Response::Release {
            id,
            freed,
            free_nodes,
        } => {
            w.u8(2);
            w.str(id);
            w.usize_arr(freed);
            w.usize_arr(free_nodes);
        }
        Response::Stats(s) => {
            w.u8(3);
            w.str(&s.id);
            w.u64(s.served);
            w.u64(s.result_hits);
            w.u64(s.problem_hits);
            w.u64(s.misses);
            w.u64(s.rejected);
            w.u64(s.replays);
            w.usize_arr(&s.free_nodes);
            w.u64(s.active_leases);
            // Trailing extension, present only when the request asked
            // for detail — an uninvited extension would be trailing
            // garbage to an old client's decoder.
            if let Some(d) = &s.detail {
                write_stats_detail(&mut w, d);
            }
        }
        Response::Shutdown { id, draining } => {
            w.u8(4);
            w.str(id);
            w.u64(*draining);
        }
        Response::Error(e) => {
            w.u8(5);
            w.str(&e.id);
            w.u8(e.code.code());
            w.str(&e.message);
        }
        Response::Journal(j) => {
            w.u8(6);
            w.str(&j.id);
            w.str(&j.key);
            w.bool(j.held);
            w.opt_u64(j.lease);
            w.usize_arr(&j.site_counts);
        }
        Response::RemapDiff(r) => {
            w.u8(8);
            w.str(&r.id);
            w.usize_arr(&r.mapping);
            w.usize_arr(&r.moved);
            w.f64(r.old_cost);
            w.f64(r.new_cost);
            w.u64(r.migrations);
            w.opt_u64(r.lease);
            w.usize_arr(&r.free_nodes);
        }
        Response::TraceDump(t) => {
            w.u8(7);
            w.str(&t.id);
            w.f64(t.now_s);
            w.u64(t.dropped);
            let n = u32::try_from(t.tracks.len()).expect("track list exceeds u32 length prefix");
            w.u32(n);
            for tr in &t.tracks {
                w.u32(tr.track);
                w.str(&tr.process);
                w.str(&tr.name);
            }
            let n = u32::try_from(t.events.len()).expect("event list exceeds u32 length prefix");
            w.u32(n);
            for e in &t.events {
                w.u32(e.track);
                w.str(&e.name);
                w.u8(e.kind);
                w.f64(e.ts_s);
                w.f64(e.value);
            }
        }
    }
    w.out
}

// ---------------------------------------------------------------------
// Payload reader
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Malformed(format!(
                "{what} needs {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn bool(&mut self, what: &str) -> Result<bool, FrameError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(FrameError::Malformed(format!("{what}: bad bool byte {b}"))),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self, what: &str) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A wire `u64` that the decoded type holds as `usize`. Narrowing
    /// is checked: a value past `usize::MAX` (possible on 32-bit
    /// targets, or hostile on any) is `Malformed`, never a silent wrap.
    fn usize64(&mut self, what: &str) -> Result<usize, FrameError> {
        fit_usize(self.u64(what)?, what)
    }

    fn opt_usize64(&mut self, what: &str) -> Result<Option<usize>, FrameError> {
        self.opt_u64(what)?.map(|v| fit_usize(v, what)).transpose()
    }

    fn str(&mut self, what: &str) -> Result<String, FrameError> {
        let len = self.u32(what)? as usize;
        if len > self.remaining() {
            return Err(FrameError::Malformed(format!(
                "{what}: declared string length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        String::from_utf8(self.take(len, what)?.to_vec())
            .map_err(|e| FrameError::Malformed(format!("{what}: invalid UTF-8: {e}")))
    }

    fn opt_u64(&mut self, what: &str) -> Result<Option<u64>, FrameError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(what)?)),
            b => Err(FrameError::Malformed(format!(
                "{what}: bad presence byte {b}"
            ))),
        }
    }

    fn opt_str(&mut self, what: &str) -> Result<Option<String>, FrameError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.str(what)?)),
            b => Err(FrameError::Malformed(format!(
                "{what}: bad presence byte {b}"
            ))),
        }
    }

    fn usize_arr(&mut self, what: &str) -> Result<Vec<usize>, FrameError> {
        let count = self.u32(what)? as usize;
        // Each entry is 8 bytes: a declared count past the remaining
        // bytes is hostile input, refused before any allocation.
        if count > self.remaining() / 8 {
            return Err(FrameError::Malformed(format!(
                "{what}: declared {count} entries exceed {} remaining bytes",
                self.remaining()
            )));
        }
        (0..count).map(|_| self.usize64(what)).collect()
    }

    fn finish(self, what: &str) -> Result<(), FrameError> {
        if self.remaining() > 0 {
            return Err(FrameError::Malformed(format!(
                "{what}: {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Checked `u64` → `usize` narrowing for decoded wire fields.
fn fit_usize(v: u64, what: &str) -> Result<usize, FrameError> {
    usize::try_from(v).map_err(|_| {
        FrameError::Malformed(format!(
            "{what}: value {v} does not fit usize on this target"
        ))
    })
}

/// Decode a request payload. Failures come back as a ready-to-send
/// [`ErrorResponse`] — the binary twin of [`Request::from_line`],
/// including the same calibration-bounds validation with the same
/// messages (and the same id echo), so the two protocols refuse
/// identical bad requests with identical errors.
pub fn decode_request_payload(payload: &[u8]) -> Result<Request, ErrorResponse> {
    decode_request_inner(payload).map_err(|e| {
        let (id, message) = match &e {
            FrameError::Malformed(m) if m.contains('\u{0}') => {
                let (id, msg) = m.split_once('\u{0}').expect("separator checked");
                (id.to_string(), msg.to_string())
            }
            other => (String::new(), other.to_string()),
        };
        ErrorResponse {
            id,
            code: ErrorCode::BadRequest,
            message,
        }
    })
}

fn decode_request_inner(payload: &[u8]) -> Result<Request, FrameError> {
    let mut r = Reader::new(payload);
    let tag = r.u8("request tag")?;
    let request = match tag {
        1 => {
            let id = r.str("map.id")?;
            let pattern_csv = r.str("map.pattern_csv")?;
            let mut m = MapRequest::new(id, pattern_csv);
            m.ranks = r.opt_usize64("map.ranks")?;
            m.constraints_csv = r.opt_str("map.constraints_csv")?;
            m.algorithm = r.str("map.algorithm")?;
            m.seed = r.u64("map.seed")?;
            m.kappa = r.usize64("map.kappa")?;
            m.samples = r.usize64("map.samples")?;
            m.calibration = CalibSpec {
                days: r.usize64("map.calibration.days")?,
                probes_per_day: r.usize64("map.calibration.probes")?,
                noise_cv: r.f64("map.calibration.noise")?,
                loss_rate: r.f64("map.calibration.loss")?,
                seed: r.u64("map.calibration.seed")?,
            };
            m.deadline_ms = r.opt_u64("map.deadline_ms")?;
            m.reserve = r.bool("map.reserve")?;
            m.lease_ttl_ms = r.opt_u64("map.lease_ttl_ms")?;
            m.use_result_cache = r.bool("map.cache")?;
            m.idempotency_key = r.opt_str("map.idem")?;
            // Optional trailing extensions: old peers end the payload
            // here, new peers may append any marker-led suffix.
            while r.remaining() > 0 {
                let marker = r.u8("map.ext marker")?;
                match marker {
                    TRACE_EXT_MARKER => {
                        m.trace = Some(TraceContext {
                            trace_id: r.u64("map.trace.id")?,
                            parent_span: r.u64("map.trace.parent")?,
                            sampled: r.bool("map.trace.sampled")?,
                        });
                    }
                    MULTILEVEL_EXT_MARKER => {
                        m.multilevel = Some(MultilevelSpec {
                            coarsen_cutoff: r.usize64("map.multilevel.cutoff")?,
                            match_rounds: r.usize64("map.multilevel.rounds")?,
                            refine_passes: r.usize64("map.multilevel.passes")?,
                        });
                    }
                    other => {
                        return Err(FrameError::Malformed(format!(
                            "map.trace: unknown extension marker {other}"
                        )));
                    }
                }
            }
            r.finish("map request")?;
            if let Some(ml) = &m.multilevel {
                // Same bounds v1 enforces, with the same messages.
                if ml.coarsen_cutoff == 0 {
                    return Err(bad_field(&m.id, "multilevel cutoff must be >= 1"));
                }
                if ml.match_rounds == 0 {
                    return Err(bad_field(&m.id, "multilevel rounds must be >= 1"));
                }
            }
            // The same bounds v1 enforces at decode time, with the same
            // messages (the differential suite compares them verbatim).
            if !(m.calibration.noise_cv.is_finite() && m.calibration.noise_cv >= 0.0) {
                return Err(bad_field(
                    &m.id,
                    "calibration noise must be finite and >= 0",
                ));
            }
            if !(m.calibration.loss_rate.is_finite()
                && (0.0..1.0).contains(&m.calibration.loss_rate))
            {
                return Err(bad_field(&m.id, "calibration loss must be in [0, 1)"));
            }
            Request::Map(m)
        }
        2 => {
            let id = r.str("release.id")?;
            let lease = r.u64("release.lease")?;
            r.finish("release request")?;
            Request::Release { id, lease }
        }
        3 => {
            let id = r.str("stats.id")?;
            // Optional trailing detail flag (absent = false).
            let detail = if r.remaining() > 0 {
                r.bool("stats.detail")?
            } else {
                false
            };
            r.finish("stats request")?;
            Request::Stats { id, detail }
        }
        4 => {
            let id = r.str("shutdown.id")?;
            r.finish("shutdown request")?;
            Request::Shutdown { id }
        }
        5 => {
            let id = r.str("journal.id")?;
            let key = r.str("journal.key")?;
            r.finish("journal request")?;
            Request::Journal { id, key }
        }
        6 => {
            let id = r.str("trace_dump.id")?;
            r.finish("trace dump request")?;
            Request::TraceDump { id }
        }
        7 => {
            let id = r.str("remap.id")?;
            let pattern_csv = r.str("remap.pattern_csv")?;
            let mapping = r.usize_arr("remap.mapping")?;
            let mut m = RemapRequest::new(id, pattern_csv, mapping);
            m.constraints_csv = r.opt_str("remap.constraints_csv")?;
            m.budget = r.opt_u64("remap.budget")?;
            m.alpha = r.f64("remap.alpha")?;
            m.calibration = CalibSpec {
                days: r.usize64("remap.calibration.days")?,
                probes_per_day: r.usize64("remap.calibration.probes")?,
                noise_cv: r.f64("remap.calibration.noise")?,
                loss_rate: r.f64("remap.calibration.loss")?,
                seed: r.u64("remap.calibration.seed")?,
            };
            m.lease = r.opt_u64("remap.lease")?;
            r.finish("remap request")?;
            // The same bounds the v1 decoder enforces, same messages.
            if m.mapping.is_empty() {
                return Err(bad_field(&m.id, "remap request needs a non-empty mapping"));
            }
            if !(m.alpha.is_finite() && m.alpha >= 0.0) {
                return Err(bad_field(&m.id, "remap alpha must be finite and >= 0"));
            }
            Request::Remap(m)
        }
        other => {
            return Err(FrameError::Malformed(format!(
                "unknown request tag {other}"
            )))
        }
    };
    Ok(request)
}

/// A validation failure that must carry the request id (unlike
/// structural failures, where no id was recoverable). Smuggled through
/// [`FrameError::Malformed`] as `id\u{0}message` and unpacked by
/// [`decode_request_payload`].
fn bad_field(id: &str, message: &str) -> FrameError {
    FrameError::Malformed(format!("{id}\u{0}{message}"))
}

/// Decode a response payload (the client side) — the binary twin of
/// [`Response::from_line`].
pub fn decode_response_payload(payload: &[u8]) -> Result<Response, FrameError> {
    let mut r = Reader::new(payload);
    let tag = r.u8("response tag")?;
    let response = match tag {
        1 => {
            let resp = Response::Map(MapResponse {
                id: r.str("map.id")?,
                mapping: r.usize_arr("map.mapping")?,
                cost: r.f64("map.cost")?,
                cached: {
                    let code = r.u8("map.cached")?;
                    CacheTier::from_code(code).ok_or_else(|| {
                        FrameError::Malformed(format!("map.cached: bad tier code {code}"))
                    })?
                },
                queue_wait_s: r.f64("map.queue_wait_s")?,
                solve_s: r.f64("map.solve_s")?,
                lease: r.opt_u64("map.lease")?,
                site_counts: r.usize_arr("map.site_counts")?,
                free_nodes: r.usize_arr("map.free_nodes")?,
                degraded: r.bool("map.degraded")?,
                staleness: r.u64("map.staleness")?,
            });
            r.finish("map response")?;
            resp
        }
        2 => {
            let resp = Response::Release {
                id: r.str("release.id")?,
                freed: r.usize_arr("release.freed")?,
                free_nodes: r.usize_arr("release.free_nodes")?,
            };
            r.finish("release response")?;
            resp
        }
        3 => {
            let mut s = StatsResponse {
                id: r.str("stats.id")?,
                served: r.u64("stats.served")?,
                result_hits: r.u64("stats.result_hits")?,
                problem_hits: r.u64("stats.problem_hits")?,
                misses: r.u64("stats.misses")?,
                rejected: r.u64("stats.rejected")?,
                replays: r.u64("stats.replays")?,
                free_nodes: r.usize_arr("stats.free_nodes")?,
                active_leases: r.u64("stats.active_leases")?,
                detail: None,
            };
            // Optional trailing extension, sent only when asked for.
            if r.remaining() > 0 {
                s.detail = Some(read_stats_detail(&mut r)?);
            }
            r.finish("stats response")?;
            Response::Stats(s)
        }
        4 => {
            let resp = Response::Shutdown {
                id: r.str("shutdown.id")?,
                draining: r.u64("shutdown.draining")?,
            };
            r.finish("shutdown response")?;
            resp
        }
        5 => {
            let resp = Response::Error(ErrorResponse {
                id: r.str("error.id")?,
                code: {
                    let code = r.u8("error.code")?;
                    ErrorCode::from_code(code).ok_or_else(|| {
                        FrameError::Malformed(format!("error.code: bad code {code}"))
                    })?
                },
                message: r.str("error.message")?,
            });
            r.finish("error response")?;
            resp
        }
        6 => {
            let resp = Response::Journal(JournalResponse {
                id: r.str("journal.id")?,
                key: r.str("journal.key")?,
                held: r.bool("journal.held")?,
                lease: r.opt_u64("journal.lease")?,
                site_counts: r.usize_arr("journal.site_counts")?,
            });
            r.finish("journal response")?;
            resp
        }
        7 => {
            let id = r.str("trace_dump.id")?;
            let now_s = r.f64("trace_dump.now_s")?;
            let dropped = r.u64("trace_dump.dropped")?;
            let track_count = r.u32("trace_dump.tracks")? as usize;
            // Smallest possible track entry: u32 id + two empty strings
            // (4 bytes each) — refuse hostile counts before allocating.
            if track_count > r.remaining() / 12 {
                return Err(FrameError::Malformed(format!(
                    "trace_dump.tracks: declared {track_count} entries exceed {} remaining bytes",
                    r.remaining()
                )));
            }
            let tracks = (0..track_count)
                .map(|_| {
                    Ok(WireTrack {
                        track: r.u32("trace_dump.track.id")?,
                        process: r.str("trace_dump.track.process")?,
                        name: r.str("trace_dump.track.name")?,
                    })
                })
                .collect::<Result<Vec<_>, FrameError>>()?;
            let event_count = r.u32("trace_dump.events")? as usize;
            // Smallest event entry: u32 track + empty string (4) + kind
            // byte + two f64s = 25 bytes.
            if event_count > r.remaining() / 25 {
                return Err(FrameError::Malformed(format!(
                    "trace_dump.events: declared {event_count} entries exceed {} remaining bytes",
                    r.remaining()
                )));
            }
            let events = (0..event_count)
                .map(|_| {
                    Ok(WireTraceEvent {
                        track: r.u32("trace_dump.event.track")?,
                        name: r.str("trace_dump.event.name")?,
                        kind: r.u8("trace_dump.event.kind")?,
                        ts_s: r.f64("trace_dump.event.ts")?,
                        value: r.f64("trace_dump.event.value")?,
                    })
                })
                .collect::<Result<Vec<_>, FrameError>>()?;
            let resp = Response::TraceDump(TraceDumpResponse {
                id,
                now_s,
                dropped,
                tracks,
                events,
            });
            r.finish("trace dump response")?;
            resp
        }
        8 => {
            let resp = Response::RemapDiff(RemapDiffResponse {
                id: r.str("remap.id")?,
                mapping: r.usize_arr("remap.mapping")?,
                moved: r.usize_arr("remap.moved")?,
                old_cost: r.f64("remap.old_cost")?,
                new_cost: r.f64("remap.new_cost")?,
                migrations: r.u64("remap.migrations")?,
                lease: r.opt_u64("remap.lease")?,
                free_nodes: r.usize_arr("remap.free_nodes")?,
            });
            r.finish("remap response")?;
            resp
        }
        other => {
            return Err(FrameError::Malformed(format!(
                "unknown response tag {other}"
            )))
        }
    };
    Ok(response)
}

/// Read the trailing [`StatsDetail`] extension of a stats response.
fn read_stats_detail(r: &mut Reader<'_>) -> Result<StatsDetail, FrameError> {
    let hist_schema = r.u64("stats.detail.hist_schema")?;
    let queue_depth = r.u64("stats.detail.queue_depth")?;
    let max_queue_depth = r.u64("stats.detail.max_queue_depth")?;
    let leased_nodes = r.usize_arr("stats.detail.leased_nodes")?;
    let hist_count = r.u32("stats.detail.hists")? as usize;
    // Smallest possible summary is well over 60 bytes; a loose 16-byte
    // floor still refuses hostile counts before any allocation.
    if hist_count > r.remaining() / 16 {
        return Err(FrameError::Malformed(format!(
            "stats.detail.hists: declared {hist_count} entries exceed {} remaining bytes",
            r.remaining()
        )));
    }
    let mut hists = Vec::with_capacity(hist_count);
    for _ in 0..hist_count {
        let name = r.str("stats.detail.hist.name")?;
        let count = r.u64("stats.detail.hist.count")?;
        let sum_us = r.u64("stats.detail.hist.sum")?;
        let min_us = r.opt_u64("stats.detail.hist.min")?;
        let max_us = r.opt_u64("stats.detail.hist.max")?;
        let p50_us = r.u64("stats.detail.hist.p50")?;
        let p90_us = r.u64("stats.detail.hist.p90")?;
        let p99_us = r.u64("stats.detail.hist.p99")?;
        let p999_us = r.u64("stats.detail.hist.p999")?;
        let bucket_count = r.u32("stats.detail.hist.buckets")? as usize;
        // Each bucket pair is 12 bytes on the wire.
        if bucket_count > r.remaining() / 12 {
            return Err(FrameError::Malformed(format!(
                "stats.detail.hist.buckets: declared {bucket_count} entries exceed {} remaining bytes",
                r.remaining()
            )));
        }
        let buckets = (0..bucket_count)
            .map(|_| {
                Ok((
                    r.u32("stats.detail.hist.bucket.index")?,
                    r.u64("stats.detail.hist.bucket.count")?,
                ))
            })
            .collect::<Result<Vec<_>, FrameError>>()?;
        hists.push(HistSummary {
            name,
            count,
            sum_us,
            min_us,
            max_us,
            p50_us,
            p90_us,
            p99_us,
            p999_us,
            buckets,
        });
    }
    let shards = r.u64("stats.detail.shards")?;
    Ok(StatsDetail {
        hist_schema,
        queue_depth,
        max_queue_depth,
        leased_nodes,
        hists,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map_request() -> Request {
        let mut m = MapRequest::new("r1", "src,dst,bytes,msgs\n0,1,5,2\n");
        m.ranks = Some(16);
        m.constraints_csv = Some("process,site\n0,3\n".into());
        m.algorithm = "mpipp".into();
        m.seed = 99;
        m.deadline_ms = Some(250);
        m.reserve = true;
        m.idempotency_key = Some("key-1".into());
        Request::Map(m)
    }

    #[test]
    fn frame_roundtrips_header_and_payload() {
        let frame = Frame {
            kind: FrameKind::Request,
            corr_id: 0xDEAD_BEEF_CAFE_F00D,
            payload: vec![1, 2, 3],
        };
        let bytes = frame.encode();
        assert_eq!(bytes[0], FRAME_MAGIC);
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, frame);
    }

    #[test]
    fn truncated_frames_say_how_much_they_need() {
        let bytes = encode_request(
            &Request::Stats {
                id: "s".into(),
                detail: false,
            },
            7,
        );
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(FrameError::Truncated { have, need }) => {
                    assert_eq!(have, cut);
                    assert!(need <= bytes.len());
                }
                other => panic!("cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn requests_roundtrip_through_payload_codec() {
        for req in [
            sample_map_request(),
            Request::Release {
                id: "a".into(),
                lease: 7,
            },
            Request::Stats {
                id: "b".into(),
                detail: false,
            },
            Request::Stats {
                id: "b2".into(),
                detail: true,
            },
            Request::Shutdown { id: "c".into() },
            Request::Journal {
                id: "d".into(),
                key: "client-7/42".into(),
            },
            Request::TraceDump { id: "t".into() },
        ] {
            let back = decode_request_payload(&request_payload(&req)).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn traced_map_request_roundtrips_and_extends_the_plain_bytes() {
        let Request::Map(plain) = sample_map_request() else {
            panic!("not a map request")
        };
        let mut traced = plain.clone();
        traced.trace = Some(TraceContext {
            trace_id: 0x1234_5678,
            parent_span: 9,
            sampled: false,
        });
        let plain_bytes = request_payload(&Request::Map(plain));
        let traced_bytes = request_payload(&Request::Map(traced.clone()));
        // The extension is strictly trailing: the traced payload begins
        // with the byte-identical plain payload.
        assert_eq!(&traced_bytes[..plain_bytes.len()], &plain_bytes[..]);
        assert_eq!(traced_bytes.len(), plain_bytes.len() + 1 + 8 + 8 + 1);
        let back = decode_request_payload(&traced_bytes).unwrap();
        assert_eq!(back, Request::Map(traced));
    }

    #[test]
    fn unknown_trace_extension_marker_is_malformed() {
        let Request::Map(m) = sample_map_request() else {
            panic!("not a map request")
        };
        let mut bytes = request_payload(&Request::Map(m));
        bytes.push(42); // not TRACE_EXT_MARKER
        let err = decode_request_payload(&bytes).unwrap_err();
        assert!(err.message.contains("extension marker"), "{}", err.message);
    }

    #[test]
    fn detailed_stats_response_roundtrips() {
        let resp = Response::Stats(StatsResponse {
            id: "s".into(),
            served: 5,
            misses: 5,
            free_nodes: vec![3, 1],
            active_leases: 2,
            detail: Some(StatsDetail {
                hist_schema: crate::hist::SCHEMA_VERSION,
                queue_depth: 1,
                max_queue_depth: 7,
                leased_nodes: vec![0, 2],
                hists: vec![
                    HistSummary {
                        name: "map_e2e".into(),
                        count: 3,
                        sum_us: 900,
                        min_us: Some(100),
                        max_us: Some(500),
                        p50_us: 303,
                        p90_us: 511,
                        p99_us: 511,
                        p999_us: 511,
                        buckets: vec![(52, 1), (64, 2)],
                    },
                    HistSummary::default(),
                ],
                shards: 3,
            }),
            ..StatsResponse::default()
        });
        let back = decode_response_payload(&response_payload(&resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn plain_stats_response_has_no_trailing_extension() {
        let base = StatsResponse {
            id: "s".into(),
            served: 1,
            free_nodes: vec![4],
            ..StatsResponse::default()
        };
        let plain_bytes = response_payload(&Response::Stats(base.clone()));
        let detailed = StatsResponse {
            detail: Some(StatsDetail::default()),
            ..base
        };
        let detailed_bytes = response_payload(&Response::Stats(detailed));
        assert_eq!(&detailed_bytes[..plain_bytes.len()], &plain_bytes[..]);
        assert!(detailed_bytes.len() > plain_bytes.len());
    }

    #[test]
    fn trace_dump_response_roundtrips() {
        let resp = Response::TraceDump(TraceDumpResponse {
            id: "td".into(),
            now_s: 2.25,
            dropped: 1,
            tracks: vec![
                WireTrack {
                    track: 0,
                    process: "service".into(),
                    name: "worker-0".into(),
                },
                WireTrack {
                    track: 1,
                    process: "solver".into(),
                    name: "geo".into(),
                },
            ],
            events: vec![
                WireTraceEvent {
                    track: 0,
                    name: "request".into(),
                    kind: WireTraceEvent::SPAN_BEGIN,
                    ts_s: 0.5,
                    value: 77.0,
                },
                WireTraceEvent {
                    track: 0,
                    name: "request".into(),
                    kind: WireTraceEvent::SPAN_END,
                    ts_s: 0.9,
                    value: 0.0,
                },
            ],
        });
        let back = decode_response_payload(&response_payload(&resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn hostile_trace_dump_counts_are_errors_not_allocations() {
        let mut w = Writer::new();
        w.u8(7); // trace dump response tag
        w.str("id");
        w.f64(0.0);
        w.u64(0);
        w.out.extend_from_slice(&u32::MAX.to_le_bytes()); // track count
        assert!(matches!(
            decode_response_payload(&w.out),
            Err(FrameError::Malformed(_))
        ));
        let mut w = Writer::new();
        w.u8(7);
        w.str("id");
        w.f64(0.0);
        w.u64(0);
        w.u32(0); // no tracks
        w.out.extend_from_slice(&u32::MAX.to_le_bytes()); // event count
        assert!(matches!(
            decode_response_payload(&w.out),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn remap_messages_roundtrip_through_payload_codec() {
        let mut req = RemapRequest::new("rm", "src,dst,bytes,msgs\n0,1,5,2\n", vec![0, 1, 1, 0]);
        req.constraints_csv = Some("process,site\n0,0\n".into());
        req.budget = Some(2);
        req.alpha = 0.5;
        req.lease = Some(9);
        for request in [
            Request::Remap(req),
            Request::Remap(RemapRequest::new("rm2", "src,dst,bytes,msgs\n", vec![0])),
        ] {
            let back = decode_request_payload(&request_payload(&request)).unwrap();
            assert_eq!(back, request);
        }
        let resp = Response::RemapDiff(RemapDiffResponse {
            id: "rm".into(),
            mapping: vec![1, 1, 0, 0],
            moved: vec![0, 2],
            old_cost: 9.5,
            new_cost: 7.25,
            migrations: 2,
            lease: Some(3),
            free_nodes: vec![2, 2],
        });
        let back = decode_response_payload(&response_payload(&resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn remap_validation_failures_echo_the_decoded_id() {
        let m = RemapRequest::new("rm-bad", "src,dst,bytes,msgs\n", vec![]);
        let err = decode_request_payload(&request_payload(&Request::Remap(m))).unwrap_err();
        assert_eq!(err.id, "rm-bad");
        assert_eq!(err.message, "remap request needs a non-empty mapping");
    }

    #[test]
    fn journal_responses_roundtrip_through_payload_codec() {
        for resp in [
            Response::Journal(JournalResponse {
                id: "j1".into(),
                key: "auto-00ff-3".into(),
                held: true,
                lease: Some(12),
                site_counts: vec![2, 0, 1],
            }),
            Response::Journal(JournalResponse {
                id: "j2".into(),
                key: "gone".into(),
                held: false,
                lease: None,
                site_counts: vec![],
            }),
        ] {
            let back = decode_response_payload(&response_payload(&resp)).unwrap();
            assert_eq!(back, resp);
        }
    }

    /// Writes a map-request payload whose `samples` field carries an
    /// arbitrary raw u64 — bypassing `MapRequest`'s `usize` fields so
    /// the decoder can be probed at (and past) the usize boundary.
    fn map_payload_with_samples(samples: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(1); // map request tag
        w.str("edge");
        w.str("src,dst,bytes,msgs\n");
        w.u8(0); // ranks: absent
        w.u8(0); // constraints: absent
        w.str("geo");
        w.u64(0x5C17); // seed
        w.u64(4); // kappa
        w.u64(samples);
        let d = CalibSpec::default();
        w.u64(d.days as u64);
        w.u64(d.probes_per_day as u64);
        w.f64(d.noise_cv);
        w.f64(d.loss_rate);
        w.u64(d.seed);
        w.u8(0); // deadline: absent
        w.bool(false); // reserve
        w.u8(0); // lease_ttl: absent
        w.bool(true); // cache
        w.u8(0); // idem: absent
        w.out
    }

    #[test]
    fn u64_fields_decode_exactly_at_the_usize_boundary() {
        // usize::MAX itself must decode without wrapping on every
        // target — the old `as usize` path happened to be right here,
        // but only because the test ran on 64-bit.
        let max = usize::MAX as u64;
        let Request::Map(m) = decode_request_payload(&map_payload_with_samples(max)).unwrap()
        else {
            panic!("not a map request")
        };
        assert_eq!(m.samples, usize::MAX);
    }

    #[test]
    fn u64_fields_past_usize_are_malformed_not_wrapped() {
        // On 32-bit targets usize::MAX + 1 exists as a u64 and used to
        // silently wrap to 0; now it is a typed decode error. On 64-bit
        // no such value exists and the check is vacuous (checked_add
        // returns None), which is exactly the point: the error path is
        // target-dependent, the no-wrap guarantee is not.
        if let Some(over) = (usize::MAX as u64).checked_add(1) {
            let err = decode_request_payload(&map_payload_with_samples(over)).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest);
            assert!(
                err.message.contains("does not fit usize"),
                "{}",
                err.message
            );
        }
    }

    #[test]
    fn array_entries_past_usize_are_malformed_not_wrapped() {
        if usize::try_from(u64::MAX).is_ok() {
            return; // 64-bit: every u64 fits, nothing to refuse
        }
        let mut w = Writer::new();
        w.u8(2); // release response tag
        w.str("id");
        w.out.extend_from_slice(&1u32.to_le_bytes()); // freed: 1 entry
        w.out.extend_from_slice(&u64::MAX.to_le_bytes());
        w.usize_arr(&[]); // free_nodes
        assert!(matches!(
            decode_response_payload(&w.out),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_declared_payload_is_refused_without_buffering() {
        let mut bytes = encode_request(
            &Request::Stats {
                id: "s".into(),
                detail: false,
            },
            0,
        );
        let over = u32::try_from(MAX_FRAME_BYTES).expect("frame bound fits u32") + 1;
        bytes[11..15].copy_from_slice(&over.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn validation_failures_echo_the_decoded_id() {
        let mut m = MapRequest::new("the-id", "src,dst,bytes,msgs\n");
        m.calibration.loss_rate = 1.5;
        let err = decode_request_payload(&request_payload(&Request::Map(m))).unwrap_err();
        assert_eq!(err.id, "the-id");
        assert_eq!(err.message, "calibration loss must be in [0, 1)");
    }

    #[test]
    fn hostile_array_count_is_an_error_not_an_allocation() {
        let mut w = Writer::new();
        w.u8(1); // map response tag
        w.str("id");
        w.out.extend_from_slice(&u32::MAX.to_le_bytes()); // mapping count
        assert!(matches!(
            decode_response_payload(&w.out),
            Err(FrameError::Malformed(_))
        ));
    }
}
