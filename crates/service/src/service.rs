//! The mapping engine behind the daemon: request handling, the
//! two-tier cache and the inventory, independent of any transport.
//!
//! [`MappingService::handle`] is the whole service as a plain function
//! call — the **single-process in-memory mode**. The TCP front-end
//! ([`crate::server`]) adds sockets, the admission queue and the worker
//! pool around it; deterministic tests drive this type directly so no
//! scheduler interleaving can hide in the assertions.
//!
//! A `map` request runs the same stages as the batch pipeline
//! (`geomap_core::pipeline::run_with_pattern`) and is bit-identical to
//! it for the same seeds — verified by `tests/service_behavior.rs`:
//!
//! 1. parse + validate the embedded pattern/constraints CSV,
//! 2. **result cache**: identical `(problem, algorithm, seed)` → the
//!    stored mapping, no solve at all,
//! 3. **problem cache**: identical `(network, calibration, pattern,
//!    constraints)` → the calibrated estimate and assembled
//!    [`MappingProblem`] (with its cached partner lists) are reused, so
//!    only the solve runs — repeated topologies skip the probing
//!    campaign and everything `CostTables::build` needs rebuilt,
//! 4. full miss: calibrate, assemble, solve, populate both tiers,
//! 5. optionally reserve the placement in the [`ClusterInventory`].

use crate::cache::FingerprintCache;
use crate::clock::{Clock, WallClock};
use crate::federation::LeaseJournal;
use crate::fingerprint::Fingerprint;
use crate::hist::{HistKind, HistSet, SCHEMA_VERSION};
use crate::inventory::{ClusterInventory, RebookError};
use crate::proto::{
    CacheTier, CalibSpec, ErrorCode, ErrorResponse, HistSummary, JournalResponse, MapRequest,
    MapResponse, RemapDiffResponse, RemapRequest, Request, Response, StatsDetail, StatsResponse,
    TraceDumpResponse, WireTraceEvent, WireTrack,
};
use baselines::{GreedyMapper, MonteCarlo, MpippMapper, RandomMapper};
use commgraph::CommPattern;
use geomap_core::{
    cost, repair_with_tables, ConstraintVector, CostModel, CostTables, GeoMapper, Mapper, Mapping,
    MappingProblem, Metrics, MultilevelConfig, MultilevelMapper, RemapConfig, RingBufferSink,
    Trace, TraceEventKind, TraceScope,
};
use geonet::{io as netio, Calibrator, SiteId, SiteNetwork};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for a service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads the TCP front-end runs (the in-memory mode is
    /// whatever the caller's thread structure is).
    pub workers: usize,
    /// Admission queue bound; requests beyond it are rejected with
    /// `over_capacity` (backpressure, not buffering).
    pub queue_capacity: usize,
    /// Entries held by the calibration/problem cache.
    pub problem_cache_capacity: usize,
    /// Entries held by the solved-result cache.
    pub result_cache_capacity: usize,
    /// Entries held by the idempotency-replay cache (successful `map`
    /// responses remembered per client key so retries never re-execute;
    /// 0 disables replay).
    pub idempotency_cache_capacity: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Lease TTL applied to reservations that don't carry their own
    /// (`None`: leases live until explicit teardown).
    pub default_lease_ttl: Option<Duration>,
    /// Observability: request-phase timings and cache/inventory
    /// counters land under the `service` scope.
    pub metrics: Metrics,
    /// Event tracing: the front-end opens one track per worker; the
    /// handle is also threaded into the mappers' own search spans.
    pub trace: Trace,
    /// The ring behind `trace`, when the daemon should answer
    /// [`Request::TraceDump`] — `geomap observe` collects these rings
    /// fleet-wide and merges them into one timeline. `None` (the
    /// default) rejects dump requests; the trace handle itself may
    /// still stream elsewhere.
    pub trace_ring: Option<Arc<RingBufferSink>>,
    /// Record per-request-kind latency histograms (queue wait, solve,
    /// end-to-end), sharded per worker and merged on `stats` reads.
    /// The off path is a single bool check per request — the criterion
    /// contract in `bench` pins its overhead.
    pub record_hists: bool,
    /// The clock lease expiry (inventory and journal) reads. Production
    /// is [`WallClock`]; deterministic tests inject a
    /// [`crate::clock::VirtualClock`] shared with the fault plan so
    /// chaos storms can expire leases mid-scenario on schedule.
    pub clock: Arc<dyn Clock>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(2, |p| p.get().min(8)),
            queue_capacity: 256,
            problem_cache_capacity: 64,
            result_cache_capacity: 512,
            idempotency_cache_capacity: 1024,
            default_deadline: None,
            default_lease_ttl: None,
            metrics: Metrics::off(),
            trace: Trace::off(),
            trace_ring: None,
            record_hists: true,
            clock: Arc::new(WallClock),
        }
    }
}

/// A calibrated, assembled problem shared across requests.
#[derive(Debug)]
pub struct PreparedProblem {
    /// The problem as the optimizer sees it (estimated network,
    /// partner lists built).
    pub problem: Arc<MappingProblem>,
    /// Probes the calibration campaign issued (stats surface).
    pub calibration_probes: usize,
    /// True when the campaign starved some site pair and fell back to
    /// last-known-good `LT`/`BT` entries.
    pub degraded: bool,
    /// How many calibration generations old those fallback entries are.
    pub staleness: u64,
}

/// A solved mapping shared across identical requests.
#[derive(Debug)]
pub struct SolvedResult {
    /// The mapping.
    pub mapping: Mapping,
    /// Its Eq. 3 cost under the calibrated estimate.
    pub cost: f64,
    /// Degradation carried from the problem this was solved against.
    pub degraded: bool,
    /// Staleness carried from the problem this was solved against.
    pub staleness: u64,
}

/// The last calibration that measured every pair, kept as the fallback
/// for campaigns that lose probes.
#[derive(Debug, Clone)]
struct LastGoodCalibration {
    estimated: SiteNetwork,
    generation: u64,
}

/// A remembered successful `map` response, replayed when its
/// idempotency key comes back.
#[derive(Debug)]
struct IdemEntry {
    /// Fingerprint of the request the key was first used with; a key
    /// reused with a different request is a client bug, not a retry.
    request_fp: u64,
    response: Response,
}

/// Idempotency keys with a solve currently in flight. Lookup and
/// execution must be single-flight per key: a retry that lands while
/// the original request is still solving would miss the replay cache
/// (the entry is only published after the solve), solve again, and
/// reserve a second lease. Duplicates park on the condvar until the
/// owner releases the key.
#[derive(Debug, Default)]
struct Inflight {
    keys: Mutex<HashSet<u64>>,
    done: Condvar,
}

/// Ownership of an in-flight idempotency key; dropping it (any exit
/// path out of `handle_map` — success, rejection, or solver panic)
/// releases the key and wakes parked duplicates.
struct InflightGuard<'a> {
    inflight: &'a Inflight,
    key_fp: u64,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut keys = self.inflight.keys.lock().expect("inflight lock");
        keys.remove(&self.key_fp);
        drop(keys);
        self.inflight.done.notify_all();
    }
}

/// The transport-independent mapping service.
pub struct MappingService {
    network: SiteNetwork,
    network_fp: u64,
    config: ServiceConfig,
    inventory: ClusterInventory,
    problems: FingerprintCache<Arc<PreparedProblem>>,
    results: FingerprintCache<Arc<SolvedResult>>,
    /// Raw-request fingerprint → `(problem_key, result_key)`. Parsing
    /// and re-canonicalizing the embedded CSV dominates a cache-hit
    /// request, so requests whose *raw text* already validated skip
    /// straight to the cache keys. Only successfully validated requests
    /// are memoized — error paths always re-derive their message.
    request_memo: FingerprintCache<(u64, u64)>,
    idempotent: FingerprintCache<Arc<IdemEntry>>,
    journal: LeaseJournal,
    inflight: Inflight,
    last_good: Mutex<Option<LastGoodCalibration>>,
    calib_generation: AtomicU64,
    metrics: Metrics,
    hists: HistSet,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    served: AtomicU64,
    result_hits: AtomicU64,
    problem_hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    replays: AtomicU64,
    shutdown: AtomicBool,
}

impl MappingService {
    /// A service fronting `network` (the ground-truth cluster whose
    /// nodes the inventory tracks and whose calibration requests see).
    pub fn new(network: SiteNetwork, config: ServiceConfig) -> Self {
        let network_fp = Fingerprint::new().str(&netio::to_csv(&network)).finish();
        Self {
            inventory: ClusterInventory::with_clock(
                network.capacities(),
                Arc::clone(&config.clock),
            ),
            problems: FingerprintCache::new(config.problem_cache_capacity),
            results: FingerprintCache::new(config.result_cache_capacity),
            request_memo: FingerprintCache::new(
                config
                    .result_cache_capacity
                    .max(config.problem_cache_capacity),
            ),
            idempotent: FingerprintCache::new(config.idempotency_cache_capacity),
            journal: LeaseJournal::new(Arc::clone(&config.clock)),
            inflight: Inflight::default(),
            last_good: Mutex::new(None),
            calib_generation: AtomicU64::new(0),
            metrics: config.metrics.scoped("service"),
            hists: if config.record_hists {
                HistSet::new(config.workers)
            } else {
                HistSet::off()
            },
            queue_depth: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            network,
            network_fp,
            config,
            served: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            problem_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            replays: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The cluster this service fronts.
    pub fn network(&self) -> &SiteNetwork {
        &self.network
    }

    /// The configuration this service runs with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The inventory (tests assert conservation through this).
    pub fn inventory(&self) -> &ClusterInventory {
        &self.inventory
    }

    /// The shard-local lease journal (the federation router reconciles
    /// through [`Request::Journal`]; tests inspect it directly).
    pub fn journal(&self) -> &LeaseJournal {
        &self.journal
    }

    /// Ask the service to stop accepting new mapping work. In-flight
    /// and queued requests still complete (the front-end drains).
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once [`MappingService::begin_shutdown`] was called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handle any request in-process (queue wait = 0). This is the
    /// deterministic single-process mode; the TCP server routes every
    /// decoded request through the same code. New mapping work is
    /// refused once shutdown began — the TCP front-end gates admission
    /// itself (at accept time) so already-queued requests still drain.
    pub fn handle(&self, request: &Request) -> Response {
        self.handle_on(request, 0, TraceScope::off())
    }

    /// [`MappingService::handle`] with an explicit histogram shard (the
    /// TCP front-end passes its worker index so recording never
    /// contends across reactors) and a trace scope (the worker's track)
    /// for request-internal spans.
    pub fn handle_on(&self, request: &Request, shard: usize, scope: TraceScope<'_>) -> Response {
        let start = self.hists.enabled().then(Instant::now);
        let (response, kind) = match request {
            Request::Map(m) => {
                if self.is_shutting_down() {
                    return self.reject(
                        &m.id,
                        ErrorCode::ShuttingDown,
                        "daemon is draining; not accepting new mapping requests".into(),
                    );
                }
                return self.handle_map_on(m, 0.0, shard, scope);
            }
            Request::Release { id, lease } => {
                (self.handle_release(id, *lease), HistKind::ReleaseE2e)
            }
            Request::Stats { id, detail } => {
                (Response::Stats(self.stats(id, *detail)), HistKind::StatsE2e)
            }
            Request::TraceDump { id } => return self.trace_dump(id),
            Request::Journal { id, key } => return self.handle_journal(id, key),
            Request::Remap(r) => {
                if self.is_shutting_down() {
                    return self.reject(
                        &r.id,
                        ErrorCode::ShuttingDown,
                        "daemon is draining; not accepting new mapping requests".into(),
                    );
                }
                return self.handle_remap(r, scope);
            }
            Request::Shutdown { id } => {
                self.begin_shutdown();
                return Response::Shutdown {
                    id: id.clone(),
                    draining: 0,
                };
            }
        };
        if let Some(start) = start {
            self.hists
                .record_secs(kind, shard, start.elapsed().as_secs_f64());
        }
        response
    }

    /// Handle a `map` request that already waited `queue_wait_s` in an
    /// admission queue (0 for the in-memory mode). No shutdown gate
    /// here: the caller decides admission, so a draining server can
    /// still finish what it admitted.
    pub fn handle_map(&self, m: &MapRequest, queue_wait_s: f64) -> Response {
        self.handle_map_on(m, queue_wait_s, 0, TraceScope::off())
    }

    /// [`MappingService::handle_map`] with an explicit histogram shard
    /// and the worker's trace scope. When the request carries a sampled
    /// [`TraceContext`](crate::proto::TraceContext), the scope's track
    /// is tagged with the trace id (a `trace` counter sample) so the
    /// fleet-timeline merge can follow one request across daemons.
    pub fn handle_map_on(
        &self,
        m: &MapRequest,
        queue_wait_s: f64,
        shard: usize,
        scope: TraceScope<'_>,
    ) -> Response {
        let start = self.hists.enabled().then(Instant::now);
        if scope.enabled() {
            if let Some(t) = &m.trace {
                if t.sampled {
                    #[allow(clippy::cast_precision_loss)] // trace ids are 53-bit
                    scope.counter("trace", t.trace_id as f64);
                }
            }
        }
        let response = self.handle_map_inner(m, queue_wait_s, shard, scope);
        if let Some(start) = start {
            let e2e = queue_wait_s + start.elapsed().as_secs_f64();
            self.hists.record_secs(HistKind::MapE2e, shard, e2e);
            self.hists
                .record_secs(HistKind::MapQueueWait, shard, queue_wait_s);
        }
        response
    }

    fn handle_map_inner(
        &self,
        m: &MapRequest,
        queue_wait_s: f64,
        shard: usize,
        scope: TraceScope<'_>,
    ) -> Response {
        self.metrics.counter("requests", 1);
        self.metrics.timing("phase.queue_wait", queue_wait_s);

        // Parse + validate everything the request embeds before any
        // expensive work; every failure is a `bad_request`, never a
        // panic (this is a network-facing daemon).
        let n = m.ranks.unwrap_or_else(|| self.network.total_nodes());
        if n == 0 {
            return self.reject(
                &m.id,
                ErrorCode::BadRequest,
                "ranks must be positive".into(),
            );
        }
        if self.network.total_nodes() < n {
            return self.reject(
                &m.id,
                ErrorCode::BadRequest,
                format!(
                    "{n} processes exceed the cluster's {} nodes",
                    self.network.total_nodes()
                ),
            );
        }
        // Fast path: a request whose raw text already parsed, validated
        // and produced cache keys skips the CSV parse and the canonical
        // re-encoding entirely — on a result-cache hit the parse *was*
        // the request. Keyed over the verbatim request fields (any
        // formatting difference falls through to the slow path, whose
        // canonical keys still unify it with its equivalents).
        let raw_fp = Fingerprint::new()
            .u64(self.network_fp)
            .u64(n as u64)
            .u64(m.calibration.days as u64)
            .u64(m.calibration.probes_per_day as u64)
            .f64(m.calibration.noise_cv)
            .f64(m.calibration.loss_rate)
            .u64(m.calibration.seed)
            .str(&m.pattern_csv)
            .u64(m.constraints_csv.is_some() as u64)
            .str(m.constraints_csv.as_deref().unwrap_or(""))
            .str(&m.algorithm)
            .u64(m.seed)
            .u64(m.kappa as u64)
            .u64(m.samples as u64)
            .u64(m.multilevel.is_some() as u64)
            .u64(m.multilevel.map_or(0, |ml| ml.coarsen_cutoff as u64))
            .u64(m.multilevel.map_or(0, |ml| ml.match_rounds as u64))
            .u64(m.multilevel.map_or(0, |ml| ml.refine_passes as u64))
            .finish();
        let mut parsed: Option<(CommPattern, ConstraintVector)> = None;
        let (problem_key, result_key) = match self.request_memo.get(raw_fp) {
            Some(keys) => keys,
            None => {
                let (pattern, constraints) = match self.parse_and_validate(
                    &m.id,
                    n,
                    &m.pattern_csv,
                    m.constraints_csv.as_deref(),
                ) {
                    Ok(pc) => pc,
                    Err(resp) => return *resp,
                };
                // Cache keys over canonical encodings (the parsed
                // pattern's own CSV, not the request text, so formatting
                // differences still hit). `n` is fingerprinted
                // explicitly: the pattern CSV lists only edges and the
                // constraints CSV only pins, so neither encodes the rank
                // count on its own.
                let problem_key = Fingerprint::new()
                    .u64(self.network_fp)
                    .u64(n as u64)
                    .u64(m.calibration.days as u64)
                    .u64(m.calibration.probes_per_day as u64)
                    .f64(m.calibration.noise_cv)
                    .f64(m.calibration.loss_rate)
                    .u64(m.calibration.seed)
                    .str(&pattern.to_csv())
                    .str(&crate::constraints_csv(&constraints))
                    .finish();
                // The multilevel spec is fingerprinted as (presence,
                // values): the same problem solved direct and
                // multilevel — or with different knobs — are different
                // results and must never share a cache entry.
                let result_key = Fingerprint::new()
                    .u64(problem_key)
                    .str(&m.algorithm)
                    .u64(m.seed)
                    .u64(m.kappa as u64)
                    .u64(m.samples as u64)
                    .u64(m.multilevel.is_some() as u64)
                    .u64(m.multilevel.map_or(0, |ml| ml.coarsen_cutoff as u64))
                    .u64(m.multilevel.map_or(0, |ml| ml.match_rounds as u64))
                    .u64(m.multilevel.map_or(0, |ml| ml.refine_passes as u64))
                    .finish();
                self.request_memo.insert(raw_fp, (problem_key, result_key));
                parsed = Some((pattern, constraints));
                (problem_key, result_key)
            }
        };

        // Idempotency: a key that already produced a successful response
        // replays it verbatim — same mapping, same lease — so a client
        // that lost the response can retry without re-reserving. The
        // key is bound to the request it first arrived with; reuse with
        // different content is a client bug. Lookup is single-flight:
        // a duplicate arriving while the original is still solving
        // parks until the first response is published, so even a
        // mid-solve retry can never reserve a second lease.
        let idem = m.idempotency_key.as_deref().map(|key| {
            let key_fp = Fingerprint::new().str(key).finish();
            // The TTL is fingerprinted as (presence, value): folding
            // absence into a sentinel value would make an explicit
            // `lease_ttl_ms = <sentinel>` indistinguishable from "no
            // TTL" and replay the wrong cached response.
            let request_fp = Fingerprint::new()
                .u64(result_key)
                .u64(m.reserve as u64)
                .u64(m.lease_ttl_ms.is_some() as u64)
                .u64(m.lease_ttl_ms.unwrap_or(0))
                .finish();
            (key_fp, request_fp)
        });
        let _inflight = match idem {
            Some((key_fp, request_fp)) => match self.claim_key(&m.id, key_fp, request_fp) {
                Ok(guard) => Some(guard),
                Err(response) => return *response,
            },
            None => None,
        };

        let solve_start = Instant::now();
        let (solved, tier) = if let Some(hit) = m
            .use_result_cache
            .then(|| self.results.get(result_key))
            .flatten()
        {
            self.result_hits.fetch_add(1, Ordering::Relaxed);
            self.metrics.counter("cache.result_hit", 1);
            scope.instant("cache.result_hit");
            (hit, CacheTier::Result)
        } else {
            let (prepared, tier) = match self.problems.get(problem_key) {
                Some(p) => {
                    self.problem_hits.fetch_add(1, Ordering::Relaxed);
                    self.metrics.counter("cache.problem_hit", 1);
                    scope.instant("cache.problem_hit");
                    (p, CacheTier::Problem)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    self.metrics.counter("cache.miss", 1);
                    scope.instant("cache.miss");
                    // A memo hit skipped the parse; a problem-cache miss
                    // is the one path that still needs the parsed
                    // pattern and constraints, so they materialize here
                    // (the memo only holds requests that validated, so
                    // this re-parse cannot newly fail).
                    let (pattern, constraints) = match parsed.take() {
                        Some(pc) => pc,
                        None => match self.parse_and_validate(
                            &m.id,
                            n,
                            &m.pattern_csv,
                            m.constraints_csv.as_deref(),
                        ) {
                            Ok(pc) => pc,
                            Err(resp) => return *resp,
                        },
                    };
                    let prepared = match self.calibrate_prepare(
                        &m.id,
                        pattern,
                        constraints,
                        &m.calibration,
                        scope,
                    ) {
                        Ok(p) => p,
                        Err(resp) => return *resp,
                    };
                    self.problems.insert(problem_key, prepared.clone());
                    (prepared, CacheTier::Miss)
                }
            };
            scope.span_begin("solve");
            let outcome = self.solve(m, &prepared);
            scope.span_end("solve");
            match outcome {
                Ok(solved) => {
                    let solved = Arc::new(solved);
                    self.results.insert(result_key, solved.clone());
                    (solved, tier)
                }
                Err(resp) => return *resp,
            }
        };
        let solve_s = if tier == CacheTier::Result {
            0.0
        } else {
            let s = solve_start.elapsed().as_secs_f64();
            self.hists.record_secs(HistKind::MapSolve, shard, s);
            s
        };
        self.metrics.timing("phase.solve", solve_s);

        // Optional placement: all-or-nothing against the inventory.
        let site_counts = solved.mapping.site_counts(self.network.num_sites());
        let lease = if m.reserve {
            let ttl = m
                .lease_ttl_ms
                .map(Duration::from_millis)
                .or(self.config.default_lease_ttl);
            scope.span_begin("reserve");
            let reserved = self.inventory.reserve(&site_counts, ttl);
            scope.span_end("reserve");
            match reserved {
                Ok(lease) => {
                    // Journal keyed reservations: the federation router
                    // reconciles cross-shard retries by asking "which
                    // lease does this key hold *here*?"
                    if let Some(key) = m.idempotency_key.as_deref() {
                        self.journal.record(key, lease, &site_counts);
                    }
                    Some(lease)
                }
                Err(e) => {
                    return self.reject(&m.id, ErrorCode::InsufficientNodes, e.to_string());
                }
            }
        } else {
            None
        };

        self.served.fetch_add(1, Ordering::Relaxed);
        let free_nodes = self.inventory.free_nodes();
        self.metrics.gauge(
            "inventory.free_total",
            free_nodes.iter().sum::<usize>() as f64,
        );
        let response = Response::Map(MapResponse {
            id: m.id.clone(),
            mapping: solved
                .mapping
                .as_slice()
                .iter()
                .map(|s| s.index())
                .collect(),
            cost: solved.cost,
            cached: tier,
            queue_wait_s,
            solve_s,
            lease,
            site_counts,
            free_nodes,
            degraded: solved.degraded,
            staleness: solved.staleness,
        });
        // Remember the success under its idempotency key so a retry of
        // the same request replays this exact response (same lease —
        // never a second reservation). Must happen before `_inflight`
        // drops: parked duplicates re-check the cache the moment the
        // key is released.
        if let Some((key_fp, request_fp)) = idem {
            if self.config.idempotency_cache_capacity > 0 {
                self.idempotent.insert(
                    key_fp,
                    Arc::new(IdemEntry {
                        request_fp,
                        response: response.clone(),
                    }),
                );
            }
        }
        response
    }

    /// Parse and validate the CSV payloads a `map` or `remap` request
    /// embeds; every failure is a `bad_request`, never a panic (this is
    /// a network-facing daemon).
    fn parse_and_validate(
        &self,
        id: &str,
        n: usize,
        pattern_csv: &str,
        constraints_csv: Option<&str>,
    ) -> Result<(CommPattern, ConstraintVector), Box<Response>> {
        let pattern = CommPattern::from_csv(n, pattern_csv).map_err(|e| {
            Box::new(self.reject(id, ErrorCode::BadRequest, format!("bad pattern CSV: {e}")))
        })?;
        let constraints = match constraints_csv {
            None => ConstraintVector::none(n),
            Some(csv) => crate::parse_constraints(n, csv).map_err(|e| {
                Box::new(self.reject(
                    id,
                    ErrorCode::BadRequest,
                    format!("bad constraints CSV: {e}"),
                ))
            })?,
        };
        if let Err(e) = self.feasible(&constraints) {
            return Err(Box::new(self.reject(id, ErrorCode::BadRequest, e)));
        }
        Ok((pattern, constraints))
    }

    /// Run a calibration campaign and assemble the [`PreparedProblem`]
    /// — the problem-cache miss path, shared by `map` and `remap` (both
    /// key the same cache, so a remap for a pattern the daemon already
    /// mapped skips the campaign entirely). Each fresh campaign is a
    /// calibration generation; lossy campaigns that starve a pair fall
    /// back to the last generation that measured everything and report
    /// how many generations old that is.
    fn calibrate_prepare(
        &self,
        id: &str,
        pattern: CommPattern,
        constraints: ConstraintVector,
        calibration: &CalibSpec,
        scope: TraceScope<'_>,
    ) -> Result<Arc<PreparedProblem>, Box<Response>> {
        let generation = self.calib_generation.fetch_add(1, Ordering::SeqCst) + 1;
        let fallback = self.last_good.lock().expect("calibration lock").clone();
        scope.span_begin("calibrate");
        let report = self.metrics.timed("phase.calibrate", || {
            Calibrator::new(calibration.to_config())
                .calibrate_resilient(&self.network, fallback.as_ref().map(|g| &g.estimated))
        });
        scope.span_end("calibrate");
        let report = match report {
            Ok(r) => r,
            Err(e) => {
                return Err(Box::new(self.reject(
                    id,
                    ErrorCode::Degraded,
                    format!("calibration failed: {e}"),
                )))
            }
        };
        let staleness = if report.degraded {
            self.metrics.counter("calibration.degraded", 1);
            // Saturating: a concurrent request can take a later
            // generation, finish clean, and store a last-good *newer*
            // than this thread's generation — staleness then floors at
            // 0 instead of underflowing.
            fallback
                .as_ref()
                .map_or(0, |g| generation.saturating_sub(g.generation))
        } else {
            let mut good = self.last_good.lock().expect("calibration lock");
            let fresher = good.as_ref().is_none_or(|g| g.generation < generation);
            if fresher {
                *good = Some(LastGoodCalibration {
                    estimated: report.estimated.clone(),
                    generation,
                });
            }
            0
        };
        Ok(Arc::new(PreparedProblem {
            problem: Arc::new(MappingProblem::new(
                pattern,
                report.estimated.clone(),
                constraints,
            )),
            calibration_probes: report.probes,
            degraded: report.degraded,
            staleness,
        }))
    }

    /// Single-flight admission for an idempotency key: exactly one
    /// request per key may execute at a time. The first caller claims
    /// the key (guard returned); concurrent duplicates park here until
    /// the owner publishes its response and releases the key, then
    /// replay the stored response — or, if the owner failed (nothing
    /// published, nothing reserved), claim the key themselves. `Err` is
    /// the finished response to return: a replay, or a `bad_request`
    /// when the key is reused with different request content.
    fn claim_key(
        &self,
        id: &str,
        key_fp: u64,
        request_fp: u64,
    ) -> Result<InflightGuard<'_>, Box<Response>> {
        let mut keys = self.inflight.keys.lock().expect("inflight lock");
        loop {
            if !keys.contains(&key_fp) {
                // No owner in flight, so the replay cache is settled for
                // this key: an owner publishes its entry before the
                // guard releases the key.
                if let Some(entry) = self.idempotent.get(key_fp) {
                    if entry.request_fp != request_fp {
                        drop(keys);
                        return Err(Box::new(self.reject(
                            id,
                            ErrorCode::BadRequest,
                            "idempotency key reused with a different request".into(),
                        )));
                    }
                    self.replays.fetch_add(1, Ordering::Relaxed);
                    self.metrics.counter("idempotency.replay", 1);
                    return Err(Box::new(entry.response.clone()));
                }
                keys.insert(key_fp);
                return Ok(InflightGuard {
                    inflight: &self.inflight,
                    key_fp,
                });
            }
            keys = self.inflight.done.wait(keys).expect("inflight lock");
        }
    }

    /// Run the requested mapper; panics inside the solver surface as an
    /// `internal` error response instead of killing a worker thread.
    fn solve(
        &self,
        m: &MapRequest,
        prepared: &PreparedProblem,
    ) -> Result<SolvedResult, Box<Response>> {
        let problem = &*prepared.problem;
        let trace = &self.config.trace;
        let mapper: Box<dyn Mapper> = match m.algorithm.as_str() {
            "geo" => Box::new(GeoMapper {
                seed: m.seed,
                kappa: m.kappa,
                trace: trace.clone(),
                ..GeoMapper::default()
            }),
            "greedy" => Box::new(GreedyMapper {
                trace: trace.clone(),
                ..GreedyMapper::default()
            }),
            "mpipp" => Box::new(MpippMapper {
                trace: trace.clone(),
                ..MpippMapper::with_seed(m.seed)
            }),
            "random" => Box::new(RandomMapper::with_seed(m.seed)),
            "montecarlo" => Box::new(MonteCarlo {
                trace: trace.clone(),
                ..MonteCarlo::new(m.samples, m.seed)
            }),
            "multilevel" => {
                let spec = m.multilevel.unwrap_or_default();
                Box::new(MultilevelMapper {
                    config: MultilevelConfig {
                        coarsen_cutoff: spec.coarsen_cutoff,
                        match_rounds: spec.match_rounds,
                        refine_passes: spec.refine_passes,
                    },
                    inner: GeoMapper {
                        seed: m.seed,
                        kappa: m.kappa,
                        trace: trace.clone(),
                        ..GeoMapper::default()
                    },
                    trace: trace.clone(),
                    ..MultilevelMapper::default()
                })
            }
            other => {
                return Err(Box::new(self.reject(
                    &m.id,
                    ErrorCode::BadRequest,
                    format!(
                        "unknown algorithm {other:?}                          (geo|greedy|mpipp|random|montecarlo|multilevel)"
                    ),
                )))
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mapping = mapper.map(problem);
            let cost = cost(problem, &mapping);
            mapping.validate(problem).map(|()| SolvedResult {
                mapping,
                cost,
                degraded: prepared.degraded,
                staleness: prepared.staleness,
            })
        }));
        match outcome {
            Ok(Ok(solved)) => Ok(solved),
            Ok(Err(e)) => Err(Box::new(self.reject(
                &m.id,
                ErrorCode::Internal,
                format!("solver produced an infeasible mapping: {e}"),
            ))),
            Err(panic) => {
                let what = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("unknown panic");
                Err(Box::new(self.reject(
                    &m.id,
                    ErrorCode::Internal,
                    format!("solver panicked: {what}"),
                )))
            }
        }
    }

    fn handle_release(&self, id: &str, lease: u64) -> Response {
        match self.inventory.release(lease) {
            Ok(freed) => {
                self.journal.forget_lease(lease);
                Response::Release {
                    id: id.to_string(),
                    freed,
                    free_nodes: self.inventory.free_nodes(),
                }
            }
            Err(message) => self.reject(id, ErrorCode::UnknownLease, message),
        }
    }

    /// Answer a lease-journal lookup: does this daemon hold a *live*
    /// lease granted under `key`? The journal remembers the grant, the
    /// inventory decides liveness (released or TTL-expired leases
    /// answer `held: false`, and their journal entries are evicted).
    fn handle_journal(&self, id: &str, key: &str) -> Response {
        let entry = self.journal.lookup(key);
        match entry {
            Some(e) => match self.inventory.lease_counts(e.lease) {
                Some(site_counts) => Response::Journal(JournalResponse {
                    id: id.to_string(),
                    key: key.to_string(),
                    held: true,
                    lease: Some(e.lease),
                    site_counts,
                }),
                None => {
                    // The lease died since it was journaled (expired,
                    // or released by lease id without a key in hand).
                    // Evict conditionally: a concurrent keyed
                    // re-reserve may have journaled a fresh live lease
                    // under this key since the lookup above, and that
                    // entry must stay findable.
                    self.journal.forget_if(key, e.lease);
                    Response::Journal(JournalResponse {
                        id: id.to_string(),
                        key: key.to_string(),
                        held: false,
                        lease: None,
                        site_counts: Vec::new(),
                    })
                }
            },
            None => Response::Journal(JournalResponse {
                id: id.to_string(),
                key: key.to_string(),
                held: false,
                lease: None,
                site_counts: Vec::new(),
            }),
        }
    }

    /// Repair a drifted mapping online: bounded-migration local search
    /// from the request's current assignment
    /// ([`geomap_core::remap::repair_with_tables`]) against the *live*
    /// inventory — the capacity offered to the repair at each site is
    /// the free pool plus what the caller already holds there (its
    /// named lease, or its current footprint when no lease is named),
    /// so a migration never lands on nodes another tenant has leased.
    /// When the request names a lease, the repaired placement is
    /// rebooked onto it atomically (same lease id — the exactly-once
    /// story never sees a release/reserve pair).
    pub fn handle_remap(&self, r: &RemapRequest, scope: TraceScope<'_>) -> Response {
        self.metrics.counter("remap.requests", 1);
        let n = r.mapping.len();
        let num_sites = self.network.num_sites();
        if n == 0 {
            return self.reject(
                &r.id,
                ErrorCode::BadRequest,
                "remap needs a non-empty mapping".into(),
            );
        }
        if let Some(&bad) = r.mapping.iter().find(|&&s| s >= num_sites) {
            return self.reject(
                &r.id,
                ErrorCode::BadRequest,
                format!("mapping references site {bad}, cluster has {num_sites} sites"),
            );
        }
        if !(r.alpha.is_finite() && r.alpha >= 0.0) {
            return self.reject(
                &r.id,
                ErrorCode::BadRequest,
                "remap alpha must be finite and >= 0".into(),
            );
        }
        let (pattern, constraints) =
            match self.parse_and_validate(&r.id, n, &r.pattern_csv, r.constraints_csv.as_deref()) {
                Ok(pc) => pc,
                Err(resp) => return *resp,
            };
        let start_sites: Vec<SiteId> = r.mapping.iter().map(|&s| SiteId(s)).collect();
        if !constraints.satisfied_by(&start_sites) {
            return self.reject(
                &r.id,
                ErrorCode::BadRequest,
                "starting mapping violates its pin constraints".into(),
            );
        }
        let start = Mapping::new(start_sites);

        // Problem cache shared with `map`: identical key derivation, so
        // remapping a pattern the daemon already calibrated reuses the
        // estimate and the assembled problem.
        let problem_key = Fingerprint::new()
            .u64(self.network_fp)
            .u64(n as u64)
            .u64(r.calibration.days as u64)
            .u64(r.calibration.probes_per_day as u64)
            .f64(r.calibration.noise_cv)
            .f64(r.calibration.loss_rate)
            .u64(r.calibration.seed)
            .str(&pattern.to_csv())
            .str(&crate::constraints_csv(&constraints))
            .finish();
        let prepared = match self.problems.get(problem_key) {
            Some(p) => {
                self.problem_hits.fetch_add(1, Ordering::Relaxed);
                self.metrics.counter("cache.problem_hit", 1);
                scope.instant("cache.problem_hit");
                p
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.metrics.counter("cache.miss", 1);
                scope.instant("cache.miss");
                let p = match self.calibrate_prepare(
                    &r.id,
                    pattern,
                    constraints,
                    &r.calibration,
                    scope,
                ) {
                    Ok(p) => p,
                    Err(resp) => return *resp,
                };
                self.problems.insert(problem_key, p.clone());
                p
            }
        };

        // Live capacity view: the free pool plus the caller's own
        // holdings (a site that is "full" counting the caller's current
        // nodes is still a valid destination for the caller's ranks).
        let own = if let Some(lease) = r.lease {
            match self.inventory.lease_counts(lease) {
                Some(counts) => counts,
                None => {
                    return self.reject(
                        &r.id,
                        ErrorCode::UnknownLease,
                        format!("unknown lease {lease} (expired or never granted)"),
                    )
                }
            }
        } else {
            start.site_counts(num_sites)
        };
        let capacities: Vec<usize> = self
            .inventory
            .free_nodes()
            .iter()
            .zip(&own)
            .map(|(free, held)| free + held)
            .collect();

        let config = RemapConfig {
            budget: r.budget.map(|b| usize::try_from(b).unwrap_or(usize::MAX)),
            alpha: r.alpha,
            ..RemapConfig::default()
        };
        scope.span_begin("remap");
        let outcome = self.metrics.timed("phase.remap", || {
            let tables = CostTables::build(&prepared.problem, CostModel::Full);
            repair_with_tables(
                &tables,
                prepared.problem.constraints(),
                &capacities,
                &start,
                &config,
            )
        });
        scope.span_end("remap");

        let lease = if let Some(lease) = r.lease {
            let new_counts = outcome.mapping.site_counts(num_sites);
            match self.inventory.rebook(lease, &new_counts) {
                Ok(()) => Some(lease),
                Err(RebookError::UnknownLease) => {
                    return self.reject(
                        &r.id,
                        ErrorCode::UnknownLease,
                        format!("lease {lease} expired during the remap"),
                    )
                }
                Err(RebookError::Insufficient(e)) => {
                    // The free pool shifted between the capacity read
                    // and the rebook; nothing was taken, retrying sees
                    // the new inventory.
                    return self.reject(
                        &r.id,
                        ErrorCode::Retryable,
                        format!("inventory shifted during the remap: {e}"),
                    );
                }
            }
        } else {
            None
        };

        self.metrics
            .counter("remap.migrations", outcome.moved.len() as u64);
        Response::RemapDiff(RemapDiffResponse {
            id: r.id.clone(),
            mapping: outcome
                .mapping
                .as_slice()
                .iter()
                .map(|s| s.index())
                .collect(),
            moved: outcome.moved.clone(),
            old_cost: outcome.old_cost,
            new_cost: outcome.new_cost,
            migrations: outcome.moved.len() as u64,
            lease,
            free_nodes: self.inventory.free_nodes(),
        })
    }

    /// How many calibration generations the last fully-measured
    /// campaign lags the newest one — nonzero means fresh mappings are
    /// being cut against stale link estimates (a reconciler drift
    /// signal).
    pub fn calibration_staleness(&self) -> u64 {
        let generation = self.calib_generation.load(Ordering::SeqCst);
        let good = self
            .last_good
            .lock()
            .expect("calibration lock")
            .as_ref()
            .map_or(generation, |g| g.generation);
        generation.saturating_sub(good)
    }

    /// Current counters and inventory state. With `detail`, also the
    /// admission-queue watermarks, the per-site lease ledger, and every
    /// latency histogram (summaries + full bucket dumps, so a
    /// federation router can merge them exactly).
    pub fn stats(&self, id: &str, detail: bool) -> StatsResponse {
        let detail = detail.then(|| {
            let (_free, leased) = self.inventory.ledger();
            StatsDetail {
                hist_schema: SCHEMA_VERSION,
                queue_depth: self.queue_depth.load(Ordering::Relaxed),
                max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
                leased_nodes: leased,
                hists: HistKind::ALL
                    .iter()
                    .map(|k| HistSummary::from_histogram(k.label(), &self.hists.merged(*k)))
                    .collect(),
                shards: 1,
            }
        });
        StatsResponse {
            id: id.to_string(),
            served: self.served.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            problem_hits: self.problem_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            free_nodes: self.inventory.free_nodes(),
            active_leases: self.inventory.active_leases() as u64,
            detail,
        }
    }

    /// Dump the daemon's trace ring for the fleet-timeline collector.
    /// `now_s` is the daemon's trace clock at dump time — the collector
    /// brackets the request with its own clock reads and aligns tracks
    /// by the midpoint offset.
    fn trace_dump(&self, id: &str) -> Response {
        let Some(ring) = &self.config.trace_ring else {
            return self.reject(
                id,
                ErrorCode::BadRequest,
                "tracing ring is not enabled on this daemon".into(),
            );
        };
        let tracks = ring
            .tracks()
            .into_iter()
            .map(|t| WireTrack {
                track: t.id.0,
                process: t.process,
                name: t.name,
            })
            .collect();
        let events = ring
            .snapshot()
            .into_iter()
            .map(|e| WireTraceEvent {
                track: e.track.0,
                name: e.name.to_string(),
                kind: match e.kind {
                    TraceEventKind::SpanBegin => WireTraceEvent::SPAN_BEGIN,
                    TraceEventKind::SpanEnd => WireTraceEvent::SPAN_END,
                    TraceEventKind::Instant => WireTraceEvent::INSTANT,
                    TraceEventKind::Counter => WireTraceEvent::COUNTER,
                },
                ts_s: e.ts,
                value: e.value,
            })
            .collect();
        Response::TraceDump(TraceDumpResponse {
            id: id.to_string(),
            now_s: self.config.trace.now(),
            dropped: ring.dropped(),
            tracks,
            events,
        })
    }

    /// The latency histograms (bench read-back and tests).
    pub fn hists(&self) -> &HistSet {
        &self.hists
    }

    /// Note the admission queue's current depth (the TCP front-end
    /// reports after every push/pop); `stats` detail exposes the
    /// current value and the high-water mark.
    pub fn note_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record a rejection and build the error response. The TCP
    /// front-end also routes its queue-level rejections (over-capacity,
    /// deadline) through this so `stats.rejected` covers every path.
    pub fn reject(&self, id: &str, code: ErrorCode, message: String) -> Response {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .counter(&format!("rejected.{}", code.label()), 1);
        Response::Error(ErrorResponse {
            id: id.to_string(),
            code,
            message,
        })
    }

    /// The feasibility preconditions `MappingProblem::new` asserts,
    /// rephrased as recoverable errors.
    fn feasible(&self, constraints: &ConstraintVector) -> Result<(), String> {
        let caps = self.network.capacities();
        let mut used = vec![0usize; caps.len()];
        for (i, pin) in constraints.iter().enumerate() {
            if let Some(site) = pin {
                if site.index() >= caps.len() {
                    return Err(format!(
                        "process {i} constrained to {site}, cluster has {} sites",
                        caps.len()
                    ));
                }
                used[site.index()] += 1;
                if used[site.index()] > caps[site.index()] {
                    return Err(format!(
                        "constraints alone overflow {site} (capacity {})",
                        caps[site.index()]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Record the time a response spent being written back (the TCP
    /// front-end's third request phase next to queue-wait and solve).
    pub fn record_respond(&self, seconds: f64) {
        self.metrics.timing("phase.respond", seconds);
    }

    /// Flush the metrics sink (the front-end calls this on shutdown).
    pub fn flush(&self) {
        self.metrics.flush();
        self.config.trace.flush();
    }
}

impl std::fmt::Debug for MappingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappingService")
            .field("network", &self.network.summary())
            .field("problems", &self.problems.len())
            .field("results", &self.results.len())
            .finish()
    }
}
