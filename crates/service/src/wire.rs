//! Structured JSON (de)serialization for the domain types the wire
//! protocol carries: [`Mapping`], [`SiteNetwork`], [`CommPattern`],
//! [`ConstraintVector`], [`CalibrationReport`] and the full
//! [`PipelineResult`].
//!
//! The domain types declare themselves `serde::Serialize +
//! Deserialize` (the workspace's vendored marker traits); this module
//! supplies the actual encoding against [`crate::json`]. The contract
//! is *schema stability*: serialize → deserialize must reproduce a
//! value whose Eq. 3 cost is bit-identical to the original's
//! (`tests/wire_roundtrip.rs`). Numbers ride on Rust's `f64` Display,
//! which emits the shortest string that parses back to the same bits,
//! so matrices and costs survive exactly.

use crate::frame;
use crate::json::{obj, Json};
use crate::proto::{Request, Response};
use commgraph::CommPattern;
use geomap_core::pipeline::PipelineResult;
use geomap_core::{ConstraintVector, Mapping, MappingProblem};
use geonet::{CalibrationReport, GeoCoord, Site, SiteId, SiteNetwork, SquareMatrix};
use std::time::Duration;

/// Which encoding a connection speaks. Negotiated per connection by
/// the first byte on the wire: [`frame::FRAME_MAGIC`] (a UTF-8
/// continuation byte no JSON line can start with) means v2 binary
/// frames, anything else means v1 JSON lines. The server auto-detects,
/// so old clients keep working against new daemons on the same port;
/// clients choose their send format and *sniff* every received message
/// the same way, so even a v1-encoded rejection (written before the
/// server saw a single client byte) decodes cleanly on a v2 client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// One JSON object per `\n`-terminated line (the original protocol).
    #[default]
    V1Json,
    /// Length-prefixed binary frames with correlation ids
    /// ([`crate::frame`]).
    V2Binary,
}

impl WireFormat {
    /// Stable label (CLI flags, bench phase names).
    pub fn label(self) -> &'static str {
        match self {
            WireFormat::V1Json => "v1",
            WireFormat::V2Binary => "v2",
        }
    }

    /// Parse a label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "v1" | "json" => Some(WireFormat::V1Json),
            "v2" | "binary" => Some(WireFormat::V2Binary),
            _ => None,
        }
    }

    /// Encode one request as a complete wire message (v1: the JSON line
    /// without its newline — transports add line framing; v2: an entire
    /// frame, header included). `corr_id` only exists on v2 frames.
    pub fn encode_request(self, request: &Request, corr_id: u64) -> Vec<u8> {
        match self {
            WireFormat::V1Json => request.to_line().into_bytes(),
            WireFormat::V2Binary => frame::encode_request(request, corr_id),
        }
    }

    /// Encode one response as a complete wire message.
    pub fn encode_response(self, response: &Response, corr_id: u64) -> Vec<u8> {
        match self {
            WireFormat::V1Json => response.to_line().into_bytes(),
            WireFormat::V2Binary => frame::encode_response(response, corr_id),
        }
    }

    /// Decode one received message into `(correlation id, response)`,
    /// sniffing the format from the first byte (v1 lines carry no
    /// correlation id and decode as 0). Format-independent on purpose:
    /// a server may answer an admission-time rejection in v1 before it
    /// has seen which protocol the client speaks.
    pub fn decode_response(msg: &[u8]) -> Result<(u64, Response), String> {
        if msg.first() == Some(&frame::FRAME_MAGIC) {
            let (f, used) = frame::Frame::decode(msg).map_err(|e| e.to_string())?;
            if used != msg.len() {
                return Err(format!("{} trailing bytes after frame", msg.len() - used));
            }
            if f.kind != frame::FrameKind::Response {
                return Err("peer sent a request frame where a response was expected".into());
            }
            let response = frame::decode_response_payload(&f.payload).map_err(|e| e.to_string())?;
            Ok((f.corr_id, response))
        } else {
            let line = String::from_utf8_lossy(msg);
            Response::from_line(&line).map(|r| (0, r))
        }
    }
}

/// Serialize a mapping as a site-index array.
pub fn mapping_to_json(mapping: &Mapping) -> Json {
    Json::Arr(
        mapping
            .as_slice()
            .iter()
            .map(|s| Json::Num(s.index() as f64))
            .collect(),
    )
}

/// Deserialize a mapping from a site-index array.
pub fn mapping_from_json(v: &Json) -> Result<Mapping, String> {
    let sites = v
        .as_arr()
        .ok_or("mapping must be an array")?
        .iter()
        .map(|x| x.as_u64().map(|i| SiteId(i as usize)))
        .collect::<Option<Vec<_>>>()
        .ok_or("mapping entries must be non-negative integers")?;
    Ok(Mapping::new(sites))
}

fn matrix_to_json(m: &SquareMatrix) -> Json {
    let n = m.n();
    let mut flat = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            flat.push(Json::Num(m.get(i, j)));
        }
    }
    Json::Arr(flat)
}

fn matrix_from_json(v: &Json, n: usize, what: &str) -> Result<SquareMatrix, String> {
    let flat = v
        .as_arr()
        .ok_or_else(|| format!("{what} must be an array"))?
        .iter()
        .map(|x| x.as_f64())
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| format!("{what} entries must be numbers"))?;
    if flat.len() != n * n {
        return Err(format!(
            "{what} has {} entries, expected {}",
            flat.len(),
            n * n
        ));
    }
    Ok(SquareMatrix::from_vec(n, flat))
}

/// Serialize a network as sites plus row-major `LT`/`BT`.
pub fn network_to_json(net: &SiteNetwork) -> Json {
    obj(vec![
        (
            "sites",
            Json::Arr(
                net.sites()
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("name", Json::Str(s.name.clone())),
                            ("lat", Json::Num(s.coord.lat)),
                            ("lon", Json::Num(s.coord.lon)),
                            ("nodes", Json::Num(s.nodes as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("lt", matrix_to_json(net.lt())),
        ("bt", matrix_to_json(net.bt())),
    ])
}

/// Deserialize a network.
pub fn network_from_json(v: &Json) -> Result<SiteNetwork, String> {
    let sites = v
        .get("sites")
        .and_then(Json::as_arr)
        .ok_or("network missing \"sites\" array")?
        .iter()
        .map(|s| -> Result<Site, String> {
            Ok(Site::new(
                s.get("name")
                    .and_then(Json::as_str)
                    .ok_or("site missing \"name\"")?,
                GeoCoord::new(
                    s.get("lat")
                        .and_then(Json::as_f64)
                        .ok_or("site missing \"lat\"")?,
                    s.get("lon")
                        .and_then(Json::as_f64)
                        .ok_or("site missing \"lon\"")?,
                ),
                s.get("nodes")
                    .and_then(Json::as_u64)
                    .ok_or("site missing \"nodes\"")? as usize,
            ))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let m = sites.len();
    let lt = matrix_from_json(v.get("lt").ok_or("network missing \"lt\"")?, m, "lt")?;
    let bt = matrix_from_json(v.get("bt").ok_or("network missing \"bt\"")?, m, "bt")?;
    Ok(SiteNetwork::new(sites, lt, bt))
}

/// Serialize a communication pattern (its CSV edge list, embedded —
/// the exact interchange format the file-based commands use).
pub fn pattern_to_json(pattern: &CommPattern) -> Json {
    obj(vec![
        ("n", Json::Num(pattern.n() as f64)),
        ("csv", Json::Str(pattern.to_csv())),
    ])
}

/// Deserialize a communication pattern.
pub fn pattern_from_json(v: &Json) -> Result<CommPattern, String> {
    let n = v
        .get("n")
        .and_then(Json::as_u64)
        .ok_or("pattern missing \"n\"")? as usize;
    let csv = v
        .get("csv")
        .and_then(Json::as_str)
        .ok_or("pattern missing \"csv\"")?;
    CommPattern::from_csv(n, csv)
}

/// Serialize constraints as `[site|null; n]`.
pub fn constraints_to_json(c: &ConstraintVector) -> Json {
    Json::Arr(
        c.iter()
            .map(|pin| pin.map_or(Json::Null, |s| Json::Num(s.index() as f64)))
            .collect(),
    )
}

/// Deserialize constraints.
pub fn constraints_from_json(v: &Json) -> Result<ConstraintVector, String> {
    let pins = v
        .as_arr()
        .ok_or("constraints must be an array")?
        .iter()
        .map(|x| {
            if x.is_null() {
                Ok(None)
            } else {
                x.as_u64()
                    .map(|i| Some(SiteId(i as usize)))
                    .ok_or("constraint entries must be integers or null")
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ConstraintVector::from_pins(pins))
}

/// Serialize a calibration report.
pub fn calibration_to_json(report: &CalibrationReport) -> Json {
    obj(vec![
        ("estimated", network_to_json(&report.estimated)),
        ("bandwidth_cv", matrix_to_json(&report.bandwidth_cv)),
        ("probes", Json::Num(report.probes as f64)),
        ("degraded", Json::Bool(report.degraded)),
        ("stale_pairs", Json::Num(report.stale_pairs as f64)),
        ("staleness", Json::Num(report.staleness as f64)),
    ])
}

/// Deserialize a calibration report.
pub fn calibration_from_json(v: &Json) -> Result<CalibrationReport, String> {
    let estimated = network_from_json(
        v.get("estimated")
            .ok_or("calibration missing \"estimated\"")?,
    )?;
    let m = estimated.num_sites();
    Ok(CalibrationReport {
        bandwidth_cv: matrix_from_json(
            v.get("bandwidth_cv")
                .ok_or("calibration missing \"bandwidth_cv\"")?,
            m,
            "bandwidth_cv",
        )?,
        probes: v
            .get("probes")
            .and_then(Json::as_u64)
            .ok_or("calibration missing \"probes\"")? as usize,
        // Degradation fields default to "fresh" so documents written
        // before they existed still decode.
        degraded: v.get("degraded").and_then(Json::as_bool).unwrap_or(false),
        stale_pairs: v.get("stale_pairs").and_then(Json::as_u64).unwrap_or(0) as usize,
        staleness: v.get("staleness").and_then(Json::as_u64).unwrap_or(0),
        estimated,
    })
}

/// Serialize everything a pipeline run produced.
pub fn pipeline_result_to_json(r: &PipelineResult) -> Json {
    obj(vec![
        ("pattern", pattern_to_json(&r.pattern)),
        ("compression_ratio", Json::Num(r.compression_ratio)),
        ("calibration", calibration_to_json(&r.calibration)),
        ("constraints", constraints_to_json(r.problem.constraints())),
        ("mapping", mapping_to_json(&r.mapping)),
        ("estimated_cost", Json::Num(r.estimated_cost)),
        (
            "optimization_time_s",
            Json::Num(r.optimization_time.as_secs_f64()),
        ),
    ])
}

/// Deserialize a pipeline result. The problem is reassembled from the
/// pattern, the calibrated estimate and the constraints — the cached
/// partner lists and scalars are recomputed deterministically from the
/// exact same inputs, so the Eq. 3 cost is bit-identical.
pub fn pipeline_result_from_json(v: &Json) -> Result<PipelineResult, String> {
    let pattern = pattern_from_json(v.get("pattern").ok_or("result missing \"pattern\"")?)?;
    let calibration = calibration_from_json(
        v.get("calibration")
            .ok_or("result missing \"calibration\"")?,
    )?;
    let constraints = constraints_from_json(
        v.get("constraints")
            .ok_or("result missing \"constraints\"")?,
    )?;
    let problem = MappingProblem::new(pattern.clone(), calibration.estimated.clone(), constraints);
    Ok(PipelineResult {
        pattern,
        compression_ratio: v
            .get("compression_ratio")
            .and_then(Json::as_f64)
            .ok_or("result missing \"compression_ratio\"")?,
        calibration,
        problem,
        mapping: mapping_from_json(v.get("mapping").ok_or("result missing \"mapping\"")?)?,
        estimated_cost: v
            .get("estimated_cost")
            .and_then(Json::as_f64)
            .ok_or("result missing \"estimated_cost\"")?,
        optimization_time: Duration::from_secs_f64(
            v.get("optimization_time_s")
                .and_then(Json::as_f64)
                .ok_or("result missing \"optimization_time_s\"")?,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet::{presets, InstanceType};

    #[test]
    fn network_roundtrips_bit_identically() {
        let net = presets::paper_ec2_network(16, InstanceType::M4Xlarge, 42);
        let back = network_from_json(&Json::parse(&network_to_json(&net).emit()).unwrap()).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn mapping_roundtrips() {
        let m = Mapping::from(vec![0usize, 3, 1, 2, 2]);
        let back = mapping_from_json(&Json::parse(&mapping_to_json(&m).emit()).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn constraints_roundtrip_with_nulls() {
        let mut c = ConstraintVector::none(5);
        c.pin(1, SiteId(3));
        c.pin(4, SiteId(0));
        let back =
            constraints_from_json(&Json::parse(&constraints_to_json(&c).emit()).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn bad_documents_are_descriptive() {
        assert!(network_from_json(&Json::Null)
            .unwrap_err()
            .contains("sites"));
        assert!(mapping_from_json(&Json::Str("x".into()))
            .unwrap_err()
            .contains("array"));
        let short = obj(vec![
            ("sites", Json::Arr(vec![])),
            ("lt", Json::Arr(vec![Json::Num(1.0)])),
            ("bt", Json::Arr(vec![])),
        ]);
        assert!(network_from_json(&short).unwrap_err().contains("entries"));
    }
}
