//! The shard-local lease journal: which idempotency key holds which
//! lease on *this* daemon.
//!
//! PR 5's idempotency cache already replays a lost response so a retry
//! against the *same* daemon never double-reserves. Federation breaks
//! the single-daemon assumption: a retry may land on a sibling shard,
//! succeed there, and leave the first shard holding a lease nobody
//! knows about. The journal is the missing half of the protocol — a
//! per-daemon key → lease record the router can query
//! ([`Request::Journal`](crate::proto::Request)) and reconcile: any
//! shard that holds a live lease for a key the client's final success
//! did not come from gets an explicit release.
//!
//! Liveness is decided by the [`ClusterInventory`], not the journal:
//! an entry whose lease has expired or been released is dead weight,
//! and [`LeaseJournal::forget_lease`] / lazy eviction on lookup keep
//! the map from accumulating it.
//!
//! [`ClusterInventory`]: crate::ClusterInventory

use crate::clock::Clock;
use crate::fingerprint::Fingerprint;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One journaled reservation: the lease a key was granted here.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// The idempotency key the reservation arrived under.
    pub key: String,
    /// The granted lease id (shard-local).
    pub lease: u64,
    /// Per-site node counts the lease holds.
    pub site_counts: Vec<usize>,
    /// When the reservation was granted, on the service's clock.
    pub granted_at: Instant,
}

/// Keyed reservations this daemon has granted and not yet seen
/// released. All access is under one mutex — the journal is touched
/// once per keyed reservation, release, or reconciliation query, never
/// on the solve hot path.
#[derive(Debug)]
pub struct LeaseJournal {
    clock: Arc<dyn Clock>,
    entries: Mutex<HashMap<u64, JournalEntry>>,
}

impl LeaseJournal {
    /// An empty journal stamping entries from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            entries: Mutex::new(HashMap::new()),
        }
    }

    fn key_fp(key: &str) -> u64 {
        Fingerprint::new().str(key).finish()
    }

    /// Journal a granted reservation. A key granted again (an
    /// idempotent replay hands back the *same* lease, so this only
    /// happens after the old lease died) overwrites the stale entry.
    pub fn record(&self, key: &str, lease: u64, site_counts: &[usize]) {
        let entry = JournalEntry {
            key: key.to_string(),
            lease,
            site_counts: site_counts.to_vec(),
            granted_at: self.clock.now(),
        };
        self.entries
            .lock()
            .expect("journal lock")
            .insert(Self::key_fp(key), entry);
    }

    /// Drop whichever entry holds `lease` (called on explicit release;
    /// a lease the inventory no longer knows has nothing to journal).
    pub fn forget_lease(&self, lease: u64) {
        let mut entries = self.entries.lock().expect("journal lock");
        entries.retain(|_, e| e.lease != lease);
    }

    /// Drop the entry for `key`, if any.
    pub fn forget_key(&self, key: &str) {
        self.entries
            .lock()
            .expect("journal lock")
            .remove(&Self::key_fp(key));
    }

    /// Drop the entry for `key` only if it still records `lease`. This
    /// is the lazy-eviction form: between a lookup finding `lease` dead
    /// and the eviction, a concurrent keyed re-reserve may have
    /// journaled a fresh live lease under the same key — an
    /// unconditional [`LeaseJournal::forget_key`] would delete that new
    /// entry and hide a live lease from every future journal probe.
    pub fn forget_if(&self, key: &str, lease: u64) {
        use std::collections::hash_map::Entry;
        let mut entries = self.entries.lock().expect("journal lock");
        if let Entry::Occupied(e) = entries.entry(Self::key_fp(key)) {
            if e.get().lease == lease {
                e.remove();
            }
        }
    }

    /// The journaled reservation for `key`, if one was recorded. The
    /// caller still owns the liveness check against the inventory —
    /// the journal remembers grants, the inventory decides expiry.
    pub fn lookup(&self, key: &str) -> Option<JournalEntry> {
        self.entries
            .lock()
            .expect("journal lock")
            .get(&Self::key_fp(key))
            .cloned()
    }

    /// Number of journaled entries (live or not yet evicted).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("journal lock").len()
    }

    /// True when nothing is journaled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn journal() -> LeaseJournal {
        LeaseJournal::new(Arc::new(VirtualClock::new()))
    }

    #[test]
    fn record_lookup_forget_roundtrip() {
        let j = journal();
        assert!(j.is_empty());
        j.record("k1", 7, &[1, 0, 2]);
        let e = j.lookup("k1").expect("recorded");
        assert_eq!(e.lease, 7);
        assert_eq!(e.site_counts, vec![1, 0, 2]);
        assert_eq!(e.key, "k1");
        assert!(j.lookup("k2").is_none());
        j.forget_lease(7);
        assert!(j.lookup("k1").is_none());
        assert!(j.is_empty());
    }

    #[test]
    fn forget_key_evicts_only_that_key() {
        let j = journal();
        j.record("a", 1, &[1]);
        j.record("b", 2, &[1]);
        j.forget_key("a");
        assert!(j.lookup("a").is_none());
        assert_eq!(j.lookup("b").unwrap().lease, 2);
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn forget_if_only_evicts_the_matching_lease() {
        let j = journal();
        j.record("k", 1, &[1]);
        // A stale eviction (decided against lease 2 that was already
        // replaced) must not delete the current entry…
        j.forget_if("k", 2);
        assert_eq!(j.lookup("k").unwrap().lease, 1);
        // …while a matching one evicts it, and a missing key is a no-op.
        j.forget_if("k", 1);
        assert!(j.lookup("k").is_none());
        j.forget_if("absent", 1);
        assert!(j.is_empty());
    }

    #[test]
    fn rerecording_a_key_replaces_the_stale_entry() {
        let j = journal();
        j.record("k", 1, &[2]);
        j.record("k", 9, &[3]);
        assert_eq!(j.len(), 1);
        let e = j.lookup("k").unwrap();
        assert_eq!(e.lease, 9);
        assert_eq!(e.site_counts, vec![3]);
    }

    #[test]
    fn granted_at_reads_the_injected_clock() {
        let clock = Arc::new(VirtualClock::new());
        let j = LeaseJournal::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let t0 = clock.now();
        clock.advance_ms(500);
        j.record("k", 1, &[1]);
        let e = j.lookup("k").unwrap();
        assert_eq!(e.granted_at, t0 + std::time::Duration::from_millis(500));
    }
}
