//! The federation layer: many daemons, each owning a disjoint
//! [`ClusterInventory`](crate::ClusterInventory) shard, stitched into
//! one logical mapping service.
//!
//! One daemon owning one inventory stops scaling the moment "millions
//! of users" means more placements than one process can journal. The
//! federation decomposes the fleet the same way the sparse-QAP mappers
//! decompose their assignment problems: shard-local state, a thin
//! global layer that only routes and reconciles.
//!
//! * [`shard_map`] — consistent hashing of problem fingerprints onto
//!   shards, so identical problems keep landing on the daemon whose
//!   caches are already warm (cache affinity), with a deterministic
//!   failover order when the home shard is unreachable.
//! * [`journal`] — the shard-local lease journal: every keyed
//!   reservation a daemon grants is journaled under its idempotency
//!   key, so the router can later ask "do you hold a live lease for
//!   this key?" and get an authoritative answer.
//! * [`router`] — [`ShardRouter`] fans requests out over the PR 5
//!   retry clients, fails reserving maps over to sibling shards on
//!   ambiguous errors, and reconciles the journals afterwards so a
//!   retry that landed on two shards provably never keeps two leases.
//!   [`FederatedPool`] is the throughput twin: per-shard
//!   [`PooledClient`](crate::PooledClient)s pipelining v2 frames along
//!   the same shard map.
//!
//! The correctness bar is the global conservation invariant
//!
//! ```text
//! Σ_shards (free[j] + Σ leases[j]) == Σ_shards capacity[j]   ∀ sites j
//! ```
//!
//! plus exactly-once reservation per idempotency key across the whole
//! federation, both asserted after every chaos round in
//! `tests/fault_matrix.rs`.

pub mod journal;
pub mod router;
pub mod shard_map;

pub use journal::{JournalEntry, LeaseJournal};
pub use router::{
    merge_stats, remap_affinity_fingerprint, FederatedPool, RoutedResponse, ShardRouter,
};
pub use shard_map::ShardMap;
