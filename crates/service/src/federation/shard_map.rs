//! Consistent hashing of problem fingerprints onto shards.
//!
//! Cache affinity is the whole point of routing: a daemon that has
//! already calibrated and solved a problem answers its repeats from
//! the result tier in microseconds, so identical problems must keep
//! landing on the same daemon. A plain `fp % N` would do that — until
//! a shard joins or leaves and every key moves. The classic fix is a
//! hash ring: each shard projects `VNODES` points onto the u64 circle,
//! a fingerprint is owned by the first shard point at or after it, and
//! membership changes only move the keys between a leaving/joining
//! shard and its ring neighbors.
//!
//! [`ShardMap::preference`] extends ownership into a deterministic
//! failover order — keep walking the ring, collecting each *distinct*
//! shard once — which is what the router retries along when the home
//! shard is partitioned away.

use crate::fingerprint::Fingerprint;

/// Virtual nodes per shard. 64 points per shard keeps the ring's
/// load split within a few percent of uniform for small fleets
/// (verified by the `ring_balance_is_reasonable` test) without making
/// lookup tables noticeable.
pub const DEFAULT_VNODES: usize = 64;

/// Finalizer over the FNV fingerprint (splitmix64's mixing rounds).
/// Ring position is an *ordering* over the full u64 range, dominated
/// by high bits — exactly where FNV-1a's avalanche is weakest, which
/// skewed shard loads by ±50% before this mix.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The hash ring: shard names projected onto the u64 circle.
#[derive(Debug, Clone)]
pub struct ShardMap {
    names: Vec<String>,
    /// `(ring point, shard index)`, sorted by point.
    ring: Vec<(u64, usize)>,
}

impl ShardMap {
    /// A ring over `names` with [`DEFAULT_VNODES`] points per shard.
    pub fn new<S: AsRef<str>>(names: &[S]) -> Self {
        Self::with_vnodes(names, DEFAULT_VNODES)
    }

    /// A ring with an explicit vnode count (tests shrink it to make
    /// collisions and imbalance observable).
    pub fn with_vnodes<S: AsRef<str>>(names: &[S], vnodes: usize) -> Self {
        assert!(!names.is_empty(), "a shard map needs at least one shard");
        assert!(vnodes > 0, "a shard needs at least one ring point");
        let names: Vec<String> = names.iter().map(|s| s.as_ref().to_string()).collect();
        let mut ring = Vec::with_capacity(names.len() * vnodes);
        for (idx, name) in names.iter().enumerate() {
            for vnode in 0..vnodes {
                let point = mix(Fingerprint::new().str(name).u64(vnode as u64).finish());
                ring.push((point, idx));
            }
        }
        // Sort by point; ties (astronomically unlikely across distinct
        // names, but cheap to make deterministic) break by shard index.
        ring.sort_unstable();
        Self { names, ring }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the shard list is empty — unreachable by construction
    /// (the constructor asserts at least one shard), present so `len`
    /// satisfies `clippy::len_without_is_empty`.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The shard names, in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The shard owning `fingerprint`: the first ring point at or
    /// after it, wrapping at the top of the circle.
    pub fn shard_for(&self, fingerprint: u64) -> usize {
        let at = self.ring.partition_point(|&(point, _)| point < fingerprint);
        self.ring[if at == self.ring.len() { 0 } else { at }].1
    }

    /// Every shard in failover order for `fingerprint`: the owner
    /// first, then each further shard in the order its first ring
    /// point appears walking clockwise. Deterministic, covers all
    /// shards, and agrees with [`ShardMap::shard_for`] on the head.
    pub fn preference(&self, fingerprint: u64) -> Vec<usize> {
        let start = self.ring.partition_point(|&(point, _)| point < fingerprint);
        let mut order = Vec::with_capacity(self.names.len());
        let mut seen = vec![false; self.names.len()];
        for i in 0..self.ring.len() {
            let (_, shard) = self.ring[(start + i) % self.ring.len()];
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
                if order.len() == self.names.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_heads_the_preference_order_and_covers_all_shards() {
        let map = ShardMap::new(&["shard-0", "shard-1", "shard-2"]);
        for fp in [0u64, 1, 0x5C17, u64::MAX, 0x8000_0000_0000_0000] {
            let pref = map.preference(fp);
            assert_eq!(pref[0], map.shard_for(fp), "fp {fp:#x}");
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "fp {fp:#x}: {pref:?}");
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let a = ShardMap::new(&["a", "b", "c"]);
        let b = ShardMap::new(&["a", "b", "c"]);
        for fp in (0..1000u64).map(|i| Fingerprint::new().u64(i).finish()) {
            assert_eq!(a.shard_for(fp), b.shard_for(fp));
            assert_eq!(a.preference(fp), b.preference(fp));
        }
    }

    #[test]
    fn ring_balance_is_reasonable() {
        let map = ShardMap::new(&["alpha", "beta", "gamma"]);
        let mut counts = [0usize; 3];
        for i in 0..30_000u64 {
            counts[map.shard_for(Fingerprint::new().u64(i).finish())] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            // Perfect balance is 10k each; consistent hashing with 64
            // vnodes should stay within ±40% of it.
            assert!(
                (6_000..=14_000).contains(&c),
                "shard {shard} owns {c} of 30000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn membership_change_moves_few_keys() {
        let three = ShardMap::new(&["a", "b", "c"]);
        let four = ShardMap::new(&["a", "b", "c", "d"]);
        let keys: Vec<u64> = (0..10_000u64)
            .map(|i| Fingerprint::new().u64(i).finish())
            .collect();
        let moved = keys
            .iter()
            .filter(|&&fp| {
                let old = three.shard_for(fp);
                let new = four.shard_for(fp);
                // Keys may only move *to* the new shard, never between
                // the surviving three — that is the consistent-hashing
                // contract `fp % N` breaks.
                assert!(old == new || new == 3, "key {fp:#x} moved {old}->{new}");
                old != new
            })
            .count();
        // Expected churn is ~1/4 of keys; allow a generous band.
        assert!(
            (1_500..=3_500).contains(&moved),
            "{moved} of 10000 keys moved"
        );
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(&["only"]);
        assert_eq!(map.shard_for(0), 0);
        assert_eq!(map.shard_for(u64::MAX), 0);
        assert_eq!(map.preference(42), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_shard_list_is_a_bug() {
        ShardMap::new::<&str>(&[]);
    }
}
