//! The federation router: one front door over N shard daemons.
//!
//! [`ShardRouter`] owns a [`RetryingClient`] per shard and routes each
//! map request to the shard whose caches should already hold it (the
//! ring owner of the request's *affinity fingerprint* — the
//! problem-defining fields only, so retries, different callers, and
//! different lease options all land together). When the home shard
//! fails ambiguously the router fails over along the ring's preference
//! order, and afterwards **reconciles**: every shard the request
//! touched without a definitive answer is asked for its lease journal
//! entry under the request's idempotency key, and any live lease held
//! by a shard other than the one that produced the final answer is
//! released. That closes the cross-shard double-reservation window the
//! single-daemon idempotency cache cannot see.
//!
//! [`FederatedPool`] is the throughput path: the same shard map over
//! per-shard [`PooledClient`]s, pipelining v2 frames in bulk with no
//! retry machinery — the load bench and read-mostly callers use it.

use crate::client::{ClientError, PooledClient, RetryPolicy, RetryingClient};
use crate::fingerprint::Fingerprint;
use crate::hist::Histogram;
use crate::proto::{
    HistSummary, MapRequest, RemapRequest, Request, Response, StatsDetail, StatsResponse,
};
use crate::transport::Connector;
use crate::wire::WireFormat;
use geomap_core::{Trace, TrackId};
use std::time::Duration;

use super::shard_map::ShardMap;

/// The fields of a map request that define *which problem* it asks
/// about — and therefore which shard's caches can answer it. Transport
/// concerns (id, idempotency key, reservation flags, deadlines, cache
/// bypass) are deliberately excluded: a retry or a differently-leased
/// repeat of the same problem must hash to the same shard.
pub fn affinity_fingerprint(m: &MapRequest) -> u64 {
    Fingerprint::new()
        .str(&m.pattern_csv)
        .u64(m.ranks.is_some() as u64)
        .u64(m.ranks.unwrap_or(0) as u64)
        .u64(m.constraints_csv.is_some() as u64)
        .str(m.constraints_csv.as_deref().unwrap_or(""))
        .str(&m.algorithm)
        .u64(m.seed)
        .u64(m.kappa as u64)
        .u64(m.samples as u64)
        .u64(m.calibration.days as u64)
        .u64(m.calibration.probes_per_day as u64)
        .f64(m.calibration.noise_cv)
        .f64(m.calibration.loss_rate)
        .u64(m.calibration.seed)
        .finish()
}

/// The problem-defining fields of a remap request, hashed the same way
/// as [`affinity_fingerprint`]: a remap of a pattern lands on the shard
/// whose caches already hold its calibrated problem.
pub fn remap_affinity_fingerprint(r: &RemapRequest) -> u64 {
    Fingerprint::new()
        .str(&r.pattern_csv)
        .u64(r.constraints_csv.is_some() as u64)
        .str(r.constraints_csv.as_deref().unwrap_or(""))
        .u64(r.calibration.days as u64)
        .u64(r.calibration.probes_per_day as u64)
        .f64(r.calibration.noise_cv)
        .f64(r.calibration.loss_rate)
        .u64(r.calibration.seed)
        .finish()
}

/// A map answer plus where it came from.
#[derive(Debug)]
pub struct RoutedResponse {
    /// Shard index that produced the definitive answer.
    pub shard: usize,
    /// Ring owner of the request's affinity fingerprint.
    pub home: usize,
    /// The idempotency key the request traveled under (reserving
    /// requests always carry one through the router).
    pub key: Option<String>,
    /// The answer itself (including non-retryable error responses —
    /// those *are* definitive).
    pub response: Response,
}

struct Shard<C: Connector> {
    name: String,
    client: RetryingClient<C>,
}

/// Routes requests across shards with cache affinity, failover, and
/// journal reconciliation.
pub struct ShardRouter<C: Connector> {
    map: ShardMap,
    shards: Vec<Shard<C>>,
    /// `(shard, key)` pairs whose reservation outcome is unknown —
    /// the shard failed ambiguously while a keyed reserving request
    /// was in flight. Drained by [`ShardRouter::reconcile`].
    pending: Vec<(usize, String)>,
    /// Deterministic tag for router-generated idempotency keys.
    key_tag: u64,
    next_key: u64,
    next_id: u64,
    home_answers: u64,
    failovers: u64,
    trace: Trace,
    track: TrackId,
}

impl<C: Connector> ShardRouter<C> {
    /// A router over `shards` (name + connector per daemon). Each
    /// shard's client gets the policy with a per-shard seed offset so
    /// backoff jitter never synchronizes across the fleet.
    pub fn new(shards: Vec<(String, C)>, policy: RetryPolicy) -> Self {
        assert!(!shards.is_empty(), "a router needs at least one shard");
        let names: Vec<String> = shards.iter().map(|(n, _)| n.clone()).collect();
        let map = ShardMap::new(&names);
        let key_tag = Fingerprint::new().u64(policy.seed).str("router").finish();
        let shards = shards
            .into_iter()
            .enumerate()
            .map(|(i, (name, connector))| Shard {
                name,
                client: RetryingClient::new(
                    connector,
                    RetryPolicy {
                        seed: policy.seed.wrapping_add(i as u64),
                        ..policy.clone()
                    },
                ),
            })
            .collect();
        Self {
            map,
            shards,
            pending: Vec::new(),
            key_tag,
            next_key: 0,
            next_id: 0,
            home_answers: 0,
            failovers: 0,
            trace: Trace::off(),
            track: TrackId::DISABLED,
        }
    }

    /// Record routing, failover and reconcile spans on a `router` track
    /// of `trace` (the fleet-timeline collector's own ring, usually).
    pub fn set_trace(&mut self, trace: Trace) {
        self.track = trace.track("router", "router");
        self.trace = trace;
    }

    /// The shard map (tests assert routing against it).
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Ring owner for a request (where its caches live).
    pub fn home_for(&self, m: &MapRequest) -> usize {
        self.map.shard_for(affinity_fingerprint(m))
    }

    /// Requests answered by their home shard so far.
    pub fn home_answers(&self) -> u64 {
        self.home_answers
    }

    /// Requests that had to fail over past their home shard.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// `(shard, key)` pairs still awaiting journal reconciliation.
    pub fn pending_reconciliations(&self) -> usize {
        self.pending.len()
    }

    fn generate_key(&mut self) -> String {
        self.next_key += 1;
        format!("fed-{:016x}-{}", self.key_tag, self.next_key)
    }

    fn generate_id(&mut self, what: &str) -> String {
        self.next_id += 1;
        format!("router-{what}-{}", self.next_id)
    }

    /// Route one map request: home shard first, then siblings along
    /// the ring on ambiguous failure. Reserving requests always travel
    /// under an idempotency key (provided or router-generated), so a
    /// shard that processed an attempt whose response was lost holds
    /// exactly one journaled lease — which [`ShardRouter::reconcile`]
    /// releases unless that shard produced the final answer.
    ///
    /// `Err` means every shard in the preference order failed; any
    /// possibly-granted lease is queued for reconciliation, so after a
    /// successful [`ShardRouter::reconcile`] the federation holds no
    /// lease for this request at all (exactly-zero on failure,
    /// exactly-once on success).
    pub fn map(&mut self, mut request: MapRequest) -> Result<RoutedResponse, ClientError> {
        if request.reserve && request.idempotency_key.is_none() {
            request.idempotency_key = Some(self.generate_key());
        }
        let key = request.idempotency_key.clone();
        let home = self.home_for(&request);
        let order = self.map.preference(affinity_fingerprint(&request));
        self.trace.span_begin(self.track, "route", self.trace.now());
        if let Some(t) = request.trace.filter(|t| t.sampled) {
            #[allow(clippy::cast_precision_loss)] // trace ids are 53-bit
            self.trace
                .counter(self.track, "trace", self.trace.now(), t.trace_id as f64);
        }
        let out = self.map_inner(request, home, order, key);
        self.trace.span_end(self.track, "route", self.trace.now());
        out
    }

    fn map_inner(
        &mut self,
        request: MapRequest,
        home: usize,
        order: Vec<usize>,
        key: Option<String>,
    ) -> Result<RoutedResponse, ClientError> {
        let mut ambiguous: Vec<usize> = Vec::new();
        let mut last_error = None;
        for shard in order {
            if shard != home {
                self.trace.instant(self.track, "failover", self.trace.now());
            }
            match self.shards[shard].client.map(request.clone()) {
                Ok(response) => {
                    if shard == home {
                        self.home_answers += 1;
                    } else {
                        self.failovers += 1;
                    }
                    // Every ambiguously-failed shard along the way may
                    // hold a journaled lease for this key; the shard
                    // that just answered definitively is the one shard
                    // whose lease (if any) is legitimate. That shard
                    // may also appear in the queue from an *earlier*,
                    // fully-failed attempt under the same key — and a
                    // keyed replay hands back the same journaled lease,
                    // so that stale entry now names the lease the
                    // caller just received. Purge it before
                    // reconciling, or reconcile would release a live,
                    // client-held lease.
                    if let Some(key) = &key {
                        self.pending.retain(|(s, k)| *s != shard || k != key);
                        for other in ambiguous.into_iter().filter(|&s| s != shard) {
                            self.pending.push((other, key.clone()));
                        }
                        self.reconcile();
                    }
                    return Ok(RoutedResponse {
                        shard,
                        home,
                        key,
                        response,
                    });
                }
                Err(e) => {
                    // Any failure of a keyed reserving request leaves
                    // this shard's reservation state unknown: the
                    // attempt may have been processed with only the
                    // response lost. Cheap to reconcile, unsafe to
                    // assume.
                    if request.reserve && key.is_some() {
                        ambiguous.push(shard);
                    }
                    last_error = Some(e);
                }
            }
        }
        if let Some(key) = &key {
            for shard in ambiguous {
                self.pending.push((shard, key.clone()));
            }
        }
        Err(last_error.expect("at least one shard was tried"))
    }

    /// Drain the pending reconciliation queue: ask each suspect shard's
    /// journal for its lease under the key and release anything live.
    /// Returns the number of leases released. Shards that stay
    /// unreachable keep their entries queued for the next call — the
    /// queue only shrinks on definitive answers.
    pub fn reconcile(&mut self) -> usize {
        if !self.pending.is_empty() {
            self.trace
                .instant(self.track, "reconcile", self.trace.now());
        }
        let pending = std::mem::take(&mut self.pending);
        let mut released = 0;
        for (shard, key) in pending {
            let id = self.generate_id("journal");
            let outcome = self.shards[shard].client.send(&Request::Journal {
                id,
                key: key.clone(),
            });
            match outcome {
                Ok(Response::Journal(j)) => {
                    if !j.held {
                        continue; // definitively no lease: settled
                    }
                    let lease = j.lease.expect("held journal entry carries its lease");
                    let id = self.generate_id("release");
                    match self.shards[shard].client.release(&id, lease) {
                        Ok(Response::Release { .. }) => released += 1,
                        // Any other answer (`unknown_lease`: it expired
                        // or was released between lookup and now) is
                        // settled — the lease is gone either way.
                        Ok(_) => {}
                        Err(_) => self.pending.push((shard, key)),
                    }
                }
                // A non-journal answer (error response) is definitive:
                // the shard is reachable and holds nothing under the
                // key worth releasing.
                Ok(_) => {}
                // Unreachable: try again next round.
                Err(_) => self.pending.push((shard, key)),
            }
        }
        released
    }

    /// Scatter-gather the `stats` of every shard, in shard order.
    pub fn stats(&mut self) -> Result<Vec<StatsResponse>, ClientError> {
        self.stats_with_detail(false)
    }

    /// Scatter-gather per-shard stats, optionally with histogram/queue
    /// detail (merge with [`merge_stats`] for the fleet view).
    pub fn stats_with_detail(&mut self, detail: bool) -> Result<Vec<StatsResponse>, ClientError> {
        let mut all = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let id = self.generate_id("stats");
            match self.shards[i].client.send(&Request::Stats { id, detail })? {
                Response::Stats(s) => all.push(s),
                other => {
                    return Err(ClientError::Fatal(format!(
                        "shard {} answered stats with {other:?}",
                        self.shards[i].name
                    )))
                }
            }
        }
        Ok(all)
    }

    /// One aggregated view over every shard (see [`merge_stats`]).
    pub fn merged_stats(&mut self) -> Result<StatsResponse, ClientError> {
        Ok(merge_stats(&self.stats_with_detail(true)?))
    }

    /// Release a lease on a specific shard (the one named by a
    /// [`RoutedResponse`]).
    pub fn release(&mut self, shard: usize, lease: u64) -> Result<Response, ClientError> {
        let id = self.generate_id("release");
        self.shards[shard].client.release(&id, lease)
    }

    /// Ring owner for a remap request's problem caches.
    pub fn remap_home_for(&self, r: &RemapRequest) -> usize {
        self.map.shard_for(remap_affinity_fingerprint(r))
    }

    /// Route a **leased** remap to the shard that granted its lease —
    /// the only inventory that can rebook it. No failover: a sibling
    /// shard has never heard of the lease and would answer
    /// `unknown_lease`, turning a transient outage into a false
    /// eviction. This is the cross-shard lease-move discipline the
    /// daemon-local reconciler defers to (it skips placements homed on
    /// other shards; this is where those deferred moves are issued).
    pub fn remap_on(
        &mut self,
        shard: usize,
        request: RemapRequest,
    ) -> Result<Response, ClientError> {
        assert!(
            shard < self.shards.len(),
            "shard {shard} out of range ({} shards)",
            self.shards.len()
        );
        self.shards[shard].client.send(&Request::Remap(request))
    }

    /// Route an **advisory** (lease-less) remap: home shard first for
    /// cache affinity, then siblings along the ring on failure. Safe to
    /// fail over because without a lease a remap touches no inventory —
    /// every shard computes the same diff from the same request.
    pub fn remap(&mut self, request: RemapRequest) -> Result<RoutedResponse, ClientError> {
        assert!(
            request.lease.is_none(),
            "leased remaps are pinned to their granting shard; use remap_on"
        );
        let home = self.remap_home_for(&request);
        let order = self.map.preference(remap_affinity_fingerprint(&request));
        self.trace.span_begin(self.track, "route", self.trace.now());
        let mut last_error = None;
        let mut out = None;
        for shard in order {
            if shard != home {
                self.trace.instant(self.track, "failover", self.trace.now());
            }
            match self.shards[shard]
                .client
                .send(&Request::Remap(request.clone()))
            {
                Ok(response) => {
                    if shard == home {
                        self.home_answers += 1;
                    } else {
                        self.failovers += 1;
                    }
                    out = Some(RoutedResponse {
                        shard,
                        home,
                        key: None,
                        response,
                    });
                    break;
                }
                Err(e) => last_error = Some(e),
            }
        }
        self.trace.span_end(self.track, "route", self.trace.now());
        out.ok_or_else(|| last_error.expect("at least one shard was tried"))
    }
}

impl<C: Connector> std::fmt::Debug for ShardRouter<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.map.names())
            .field("pending", &self.pending.len())
            .field("home_answers", &self.home_answers)
            .field("failovers", &self.failovers)
            .finish()
    }
}

/// Element-wise sum, padding the shorter side with zeros (shards may
/// front clusters with different site counts).
fn add_sites(into: &mut Vec<usize>, other: &[usize]) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (a, b) in into.iter_mut().zip(other) {
        *a += b;
    }
}

/// Merge per-shard stats into one federation-wide view: counters sum
/// (`replays` included — a shard-level replay is a federation-level
/// replay), per-site inventories sum element-wise, queue depths sum
/// while the high-water mark takes the max, and latency histograms
/// merge **bucket-wise under the shared schema** — percentiles are
/// recomputed from the merged buckets, never averaged, so the fleet
/// p99 is exactly the p99 of the union of every shard's samples (to
/// bucket resolution). Shards without detail contribute counters only.
pub fn merge_stats(all: &[StatsResponse]) -> StatsResponse {
    let mut merged = StatsResponse {
        id: "merged".to_string(),
        ..StatsResponse::default()
    };
    let mut free_nodes = Vec::new();
    let mut leased_nodes = Vec::new();
    let mut hists: Vec<(String, Histogram)> = Vec::new();
    let mut queue_depth = 0u64;
    let mut max_queue_depth = 0u64;
    let mut hist_schema = 0u64;
    let mut shards = 0u64;
    let mut any_detail = false;
    for s in all {
        merged.served += s.served;
        merged.result_hits += s.result_hits;
        merged.problem_hits += s.problem_hits;
        merged.misses += s.misses;
        merged.rejected += s.rejected;
        merged.replays += s.replays;
        merged.active_leases += s.active_leases;
        add_sites(&mut free_nodes, &s.free_nodes);
        let Some(d) = &s.detail else { continue };
        any_detail = true;
        hist_schema = d.hist_schema;
        queue_depth += d.queue_depth;
        max_queue_depth = max_queue_depth.max(d.max_queue_depth);
        shards += d.shards;
        add_sites(&mut leased_nodes, &d.leased_nodes);
        for h in &d.hists {
            let incoming = h.to_histogram().unwrap_or_default();
            match hists.iter_mut().find(|(name, _)| *name == h.name) {
                Some((_, merged)) => merged.merge(&incoming),
                None => hists.push((h.name.clone(), incoming)),
            }
        }
    }
    merged.free_nodes = free_nodes;
    if any_detail {
        merged.detail = Some(StatsDetail {
            hist_schema,
            queue_depth,
            max_queue_depth,
            leased_nodes,
            hists: hists
                .iter()
                .map(|(name, h)| HistSummary::from_histogram(name, h))
                .collect(),
            shards,
        });
    }
    merged
}

/// The federation's throughput client: per-shard [`PooledClient`]s
/// pipelining v2 frames, requests grouped by home shard so cache
/// affinity survives batching. No failover and no retries — like
/// [`PooledClient::pipeline`], ambiguous partial batches are surfaced
/// whole and the caller decides.
#[derive(Debug)]
pub struct FederatedPool {
    map: ShardMap,
    pools: Vec<PooledClient>,
}

impl FederatedPool {
    /// Pools of `pool` v2 connections to each shard address.
    pub fn new<S: AsRef<str>>(addrs: &[S], pool: usize, timeout: Option<Duration>) -> Self {
        assert!(
            !addrs.is_empty(),
            "a federated pool needs at least one shard"
        );
        let map = ShardMap::new(addrs);
        let pools = addrs
            .iter()
            .map(|a| PooledClient::with_format(a.as_ref(), pool, timeout, WireFormat::V2Binary))
            .collect();
        Self { map, pools }
    }

    /// The shard map (the bench asserts affinity against it).
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Home shard of one request.
    pub fn home_for(&self, m: &MapRequest) -> usize {
        self.map.shard_for(affinity_fingerprint(m))
    }

    /// Pipeline a batch across the federation: requests are grouped by
    /// home shard, each group rides one [`PooledClient::pipeline`]
    /// call, and responses come back in submission order.
    pub fn map_batch(&mut self, requests: &[MapRequest]) -> Result<Vec<Response>, String> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.pools.len()];
        for (i, m) in requests.iter().enumerate() {
            groups[self.home_for(m)].push(i);
        }
        let mut responses: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
        for (shard, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let batch: Vec<Request> = group
                .iter()
                .map(|&i| Request::Map(requests[i].clone()))
                .collect();
            let answers = self.pools[shard]
                .pipeline(&batch)
                .map_err(|e| format!("shard {shard}: {e}"))?;
            for (&i, response) in group.iter().zip(answers) {
                responses[i] = Some(response);
            }
        }
        Ok(responses
            .into_iter()
            .map(|r| r.expect("every request was grouped onto a shard"))
            .collect())
    }

    /// Scatter-gather every shard's stats, in shard order.
    pub fn stats(&mut self) -> Result<Vec<StatsResponse>, String> {
        self.stats_with_detail(false)
    }

    /// Scatter-gather per-shard stats, optionally with histogram/queue
    /// detail (merge with [`merge_stats`] for the fleet view).
    pub fn stats_with_detail(&mut self, detail: bool) -> Result<Vec<StatsResponse>, String> {
        let mut all = Vec::with_capacity(self.pools.len());
        for (shard, pool) in self.pools.iter_mut().enumerate() {
            let id = format!("fedpool-stats-{shard}");
            let mut answers = pool.pipeline(&[Request::Stats { id, detail }])?;
            match answers.pop() {
                Some(Response::Stats(s)) => all.push(s),
                other => return Err(format!("shard {shard} answered stats with {other:?}")),
            }
        }
        Ok(all)
    }

    /// One aggregated view over every shard (see [`merge_stats`]).
    pub fn merged_stats(&mut self) -> Result<StatsResponse, String> {
        Ok(merge_stats(&self.stats_with_detail(true)?))
    }

    /// Ask every shard to shut down (test/bench teardown).
    pub fn shutdown(&mut self) -> Result<(), String> {
        for (shard, pool) in self.pools.iter_mut().enumerate() {
            let id = format!("fedpool-shutdown-{shard}");
            pool.pipeline(&[Request::Shutdown { id }])?;
            let _ = shard;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_fingerprint_ignores_transport_fields() {
        let mut a = MapRequest::new("id-1", "src,dst,bytes,msgs\n0,1,5,2\n");
        let mut b = MapRequest::new("id-2", "src,dst,bytes,msgs\n0,1,5,2\n");
        b.idempotency_key = Some("retry-key".into());
        b.reserve = true;
        b.lease_ttl_ms = Some(5_000);
        b.deadline_ms = Some(100);
        b.use_result_cache = false;
        assert_eq!(affinity_fingerprint(&a), affinity_fingerprint(&b));
        // …but problem-defining fields do change the route.
        a.seed += 1;
        assert_ne!(affinity_fingerprint(&a), affinity_fingerprint(&b));
    }

    #[test]
    fn absent_ranks_and_zero_ranks_hash_apart() {
        let a = MapRequest::new("a", "src,dst,bytes,msgs\n");
        let mut b = MapRequest::new("b", "src,dst,bytes,msgs\n");
        b.ranks = Some(0);
        assert_ne!(affinity_fingerprint(&a), affinity_fingerprint(&b));
    }
}
