//! The TCP front-end: accept loop, bounded admission queue, worker
//! pool, graceful shutdown.
//!
//! Transport is JSON-lines over `std::net::TcpStream`: one request per
//! line, one response per line, pipelining allowed on a connection.
//! The accept thread never parses anything — it only admits
//! connections into the bounded queue (writing an immediate
//! `over_capacity` error when the queue is full: backpressure, not
//! buffering) — so a slow client can never stall admission. Workers
//! pop connections, read and answer their requests through
//! [`MappingService`], and report the measured queue wait on each
//! first response.
//!
//! Graceful shutdown (a `shutdown` request, or [`MappingServer::stop`])
//! follows the contract from the issue: *drain the queue, reject new
//! connections, flush metrics*. The accept loop stops admitting and
//! closes the listener; workers finish everything already queued, then
//! exit; [`MappingServer::join`] returns once the sinks are flushed.

use crate::proto::{ErrorCode, Request, Response};
use crate::service::MappingService;
use geomap_core::TraceScope;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps when no connection is pending, and
/// how often parked workers re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(5);

/// Read timeout on admitted connections: an idle client releases its
/// worker instead of pinning it forever.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Longest request line a worker will buffer. A peer that streams
/// garbage without ever sending `\n` gets a clean `bad_request` at this
/// bound instead of growing the line buffer without limit.
pub const MAX_LINE_BYTES: usize = 4 << 20;

/// Bytes of an oversized request we keep consuming before hanging up,
/// so the error response isn't lost to a TCP reset while the peer is
/// still mid-send (a best-effort lingering close, not a guarantee).
const DRAIN_LIMIT: usize = 64 << 20;

/// An admitted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    accepted: Instant,
}

/// The bounded admission queue.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    capacity: usize,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit a job, or hand it back when the queue is full.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut jobs = self.jobs.lock().expect("queue lock");
        if jobs.len() >= self.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        drop(jobs);
        self.ready.notify_one();
        Ok(())
    }

    /// Wait for the next job; `None` once the service is draining and
    /// the queue is empty (the worker's signal to exit).
    fn pop(&self, service: &MappingService) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("queue lock");
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if service.is_shutting_down() {
                return None;
            }
            let (guard, _) = self.ready.wait_timeout(jobs, POLL).expect("queue lock");
            jobs = guard;
        }
    }

    fn len(&self) -> usize {
        self.jobs.lock().expect("queue lock").len()
    }
}

/// A running daemon: listener + queue + worker pool.
pub struct MappingServer {
    service: Arc<MappingService>,
    queue: Arc<Queue>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl MappingServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting. Worker count and queue bound come from the service's
    /// [`ServiceConfig`](crate::service::ServiceConfig).
    pub fn bind(service: MappingService, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(service);
        let queue = Arc::new(Queue::new(service.config().queue_capacity));

        let workers = (0..service.config().workers.max(1))
            .map(|w| {
                let service = Arc::clone(&service);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("geomap-worker-{w}"))
                    .spawn(move || worker_loop(w, &service, &queue))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let service = Arc::clone(&service);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("geomap-accept".into())
                .spawn(move || accept_loop(listener, &service, &queue))
                .expect("spawn accept loop")
        };

        Ok(Self {
            service,
            queue,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    pub fn service(&self) -> &Arc<MappingService> {
        &self.service
    }

    /// Requests currently waiting for a worker.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Begin graceful shutdown without waiting (equivalent to a
    /// `shutdown` request arriving over the wire).
    pub fn stop(&self) {
        self.service.begin_shutdown();
        self.queue.ready.notify_all();
    }

    /// Begin shutdown (if not already begun), drain the queue, join
    /// every thread and flush the observability sinks.
    pub fn join(mut self) {
        self.stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.service.flush();
    }
}

impl Drop for MappingServer {
    fn drop(&mut self) {
        // A dropped server still shuts down cleanly; `join` is the
        // explicit, blocking variant.
        self.stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.service.flush();
    }
}

fn accept_loop(listener: TcpListener, service: &MappingService, queue: &Queue) {
    while !service.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IDLE_TIMEOUT));
                let job = Job {
                    stream,
                    accepted: Instant::now(),
                };
                if let Err(mut job) = queue.try_push(job) {
                    // Backpressure: refuse right now, on the accept
                    // thread, so the queue bound actually bounds memory
                    // and latency instead of growing a buffer. The write
                    // is best-effort and nonblocking — the accept loop
                    // must never stall on a peer's receive window (the
                    // one-line error fits a fresh send buffer anyway).
                    let resp = service.reject(
                        "",
                        ErrorCode::OverCapacity,
                        format!(
                            "admission queue full ({} waiting); retry later",
                            queue.capacity
                        ),
                    );
                    let _ = job.stream.set_nonblocking(true);
                    write_response(&mut job.stream, &resp);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // Dropping the listener here closes the socket: new connections are
    // refused while the workers drain what was admitted.
}

fn worker_loop(index: usize, service: &MappingService, queue: &Queue) {
    let trace = service.config().trace.clone();
    let track = trace.track("service", &format!("worker-{index}"));
    let scope = TraceScope::new(&trace, track);
    while let Some(job) = queue.pop(service) {
        let queue_wait = job.accepted.elapsed();
        serve_connection(service, queue, &scope, job.stream, queue_wait);
    }
}

/// Answer every request on one connection. The first request is
/// charged the measured queue wait; pipelined follow-ups on the same
/// connection never waited, so they report zero.
fn serve_connection(
    service: &MappingService,
    queue: &Queue,
    scope: &TraceScope<'_>,
    stream: TcpStream,
    queue_wait: Duration,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut first = true;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        match read_bounded_line(&mut reader, &mut buf) {
            LineRead::Line => {}
            LineRead::Eof | LineRead::Err => return, // closed, timeout or reset
            LineRead::TooLong => {
                let resp = service.reject(
                    "",
                    ErrorCode::BadRequest,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                // Keep reading (bounded) so the peer's send isn't cut
                // off by a reset before it reads our error line.
                write_response(&mut writer, &resp);
                drain_bounded(&mut reader);
                return;
            }
        }
        // One lossy conversion over the whole accumulated line — never
        // per chunk, where a multi-byte character straddling a buffer
        // refill would be mangled into U+FFFD.
        let line = String::from_utf8_lossy(&buf);
        if line.trim().is_empty() {
            continue;
        }
        let queue_wait_s = if first { queue_wait.as_secs_f64() } else { 0.0 };
        first = false;
        let response = match Request::from_line(&line) {
            Err(bad) => service.reject(&bad.id, bad.code, bad.message),
            Ok(Request::Shutdown { id }) => {
                service.begin_shutdown();
                Response::Shutdown {
                    id,
                    draining: queue.len() as u64,
                }
            }
            Ok(Request::Map(m)) => {
                let deadline = m
                    .deadline_ms
                    .map(Duration::from_millis)
                    .or(service.config().default_deadline);
                if deadline.is_some_and(|d| queue_wait > d) {
                    service.reject(
                        &m.id,
                        ErrorCode::DeadlineExceeded,
                        format!(
                            "spent {:.0} ms in queue, deadline was {} ms",
                            queue_wait.as_secs_f64() * 1e3,
                            deadline.unwrap_or_default().as_millis()
                        ),
                    )
                } else {
                    scope.span_begin("request");
                    let out = service.handle_map(&m, queue_wait_s);
                    scope.span_end("request");
                    out
                }
            }
            Ok(other) => service.handle(&other),
        };
        let shutdown_now = matches!(response, Response::Shutdown { .. });
        let respond_start = Instant::now();
        let delivered = write_response(&mut writer, &response);
        service.record_respond(respond_start.elapsed().as_secs_f64());
        if !delivered || shutdown_now {
            return;
        }
    }
}

enum LineRead {
    /// A complete line (terminator stripped) is in the buffer.
    Line,
    /// Clean close before any byte of a new line.
    Eof,
    /// [`MAX_LINE_BYTES`] consumed without seeing `\n`.
    TooLong,
    /// Timeout or reset.
    Err,
}

/// `read_line` with a ceiling: consumes from `reader` until `\n`, EOF,
/// an error, or `MAX_LINE_BYTES` — whichever comes first — so a peer
/// that never terminates its line cannot grow the buffer unboundedly.
/// Accumulates raw bytes; the caller converts the complete line in one
/// pass (a per-chunk conversion would corrupt any multi-byte character
/// split across buffer refills or partial TCP reads).
fn read_bounded_line<R: BufRead>(reader: &mut R, line: &mut Vec<u8>) -> LineRead {
    loop {
        let buf = match reader.fill_buf() {
            Ok([]) => {
                return if line.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                }
            }
            Ok(buf) => buf,
            Err(_) => return LineRead::Err,
        };
        let (chunk, terminated) = match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => (&buf[..nl], true),
            None => (buf, false),
        };
        if line.len() + chunk.len() > MAX_LINE_BYTES {
            return LineRead::TooLong;
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len() + usize::from(terminated);
        reader.consume(consumed);
        if terminated {
            return LineRead::Line;
        }
    }
}

/// Best-effort lingering close after an oversized line: keep consuming
/// (up to [`DRAIN_LIMIT`]) so the peer can finish sending and read the
/// error response before we hang up.
fn drain_bounded(reader: &mut BufReader<TcpStream>) {
    let mut drained = 0usize;
    loop {
        match reader.fill_buf() {
            Ok([]) | Err(_) => return,
            Ok(buf) => {
                let n = buf.len();
                drained += n;
                reader.consume(n);
                if drained >= DRAIN_LIMIT {
                    return;
                }
            }
        }
    }
}

/// Write one response line; false when the client is gone.
fn write_response(stream: &mut TcpStream, response: &Response) -> bool {
    let mut line = response.to_line();
    line.push('\n');
    stream.write_all(line.as_bytes()).is_ok() && stream.flush().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Regression: a multi-byte UTF-8 character straddling a buffer
    /// refill must survive intact. A tiny BufReader capacity forces
    /// every character across a fill_buf boundary — the old per-chunk
    /// lossy conversion turned each of them into U+FFFD.
    #[test]
    fn multibyte_characters_survive_buffer_boundaries() {
        let text = "id-é-日本語-🦀-end";
        let wire = format!("{text}\nnext");
        for capacity in 1..8 {
            let mut reader = BufReader::with_capacity(capacity, Cursor::new(wire.as_bytes()));
            let mut line = Vec::new();
            assert!(matches!(
                read_bounded_line(&mut reader, &mut line),
                LineRead::Line
            ));
            assert_eq!(
                String::from_utf8_lossy(&line),
                text,
                "capacity {capacity} corrupted the line"
            );
        }
    }

    #[test]
    fn unterminated_line_past_the_bound_is_too_long() {
        let wire = vec![b'x'; MAX_LINE_BYTES + 1];
        let mut reader = BufReader::new(Cursor::new(wire));
        let mut line = Vec::new();
        assert!(matches!(
            read_bounded_line(&mut reader, &mut line),
            LineRead::TooLong
        ));
    }

    #[test]
    fn eof_before_any_byte_is_eof_and_after_bytes_is_a_line() {
        let mut reader = BufReader::new(Cursor::new(b"".to_vec()));
        let mut line = Vec::new();
        assert!(matches!(
            read_bounded_line(&mut reader, &mut line),
            LineRead::Eof
        ));

        let mut reader = BufReader::new(Cursor::new(b"partial".to_vec()));
        line.clear();
        assert!(matches!(
            read_bounded_line(&mut reader, &mut line),
            LineRead::Line
        ));
        assert_eq!(line, b"partial");
    }
}
