//! The TCP front-end: accept loop, bounded admission queue, reactor
//! threads, graceful shutdown.
//!
//! Connections speak either wire protocol — v1 JSON lines or v2 binary
//! frames ([`crate::frame`]) — told apart by each message's first byte
//! ([`frame::FRAME_MAGIC`] is a UTF-8 continuation byte no JSON line
//! can start with), so both share one port and one code path.
//! Pipelining is allowed on every connection in both formats.
//!
//! The accept thread never parses anything — it only admits
//! connections into the bounded queue (writing an immediate
//! `over_capacity` error when the queue is full: backpressure, not
//! buffering) — so a slow client can never stall admission. Reactor
//! threads adopt admitted connections in batches and run a readiness
//! loop over them: each sweep flushes pending writes, reads whatever
//! bytes are available from every nonblocking socket, answers every
//! *complete* message through [`MappingService`], and writes each
//! connection's accumulated responses with a single syscall — so a
//! burst of pipelined cache hits drains in one syscall wave instead of
//! one read/write round trip each. A slow or idle connection costs a
//! buffer, never a thread.
//!
//! Graceful shutdown (a `shutdown` request, or [`MappingServer::stop`])
//! follows the contract from the issue: *drain the queue, reject new
//! connections, flush metrics*. The accept loop stops admitting and
//! closes the listener; reactors answer everything already buffered,
//! flush, close their connections and exit; [`MappingServer::join`]
//! returns once the sinks are flushed.

use crate::frame::{self, Frame, FrameError};
use crate::proto::{ErrorCode, Request, Response};
use crate::service::MappingService;
use geomap_core::TraceScope;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps when no connection is pending, and
/// how long an empty reactor parks on the queue's condvar.
const POLL: Duration = Duration::from_millis(5);

/// Idle bound on admitted connections: a client that goes silent this
/// long is closed (it can reconnect; buffers are not forever).
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Longest request line a reactor will buffer. A peer that streams
/// garbage without ever sending `\n` gets a clean `bad_request` at this
/// bound instead of growing the buffer without limit.
pub const MAX_LINE_BYTES: usize = 4 << 20;

/// Bytes of an oversized request we keep consuming before hanging up,
/// so the error response isn't lost to a TCP reset while the peer is
/// still mid-send (a best-effort lingering close, not a guarantee).
const DRAIN_LIMIT: usize = 64 << 20;

/// Most bytes read from one connection in one sweep, so a firehose
/// client cannot starve its neighbors on the same reactor.
const READ_BURST: usize = 256 << 10;

/// Stop answering a connection's buffered requests while this many
/// response bytes are already waiting for it to read — write-side
/// backpressure for a client that pipelines requests but never reads.
const OUT_HIGH_WATER: usize = 8 << 20;

/// Empty sweeps a reactor spins (yielding) before it starts sleeping —
/// busy enough to catch the next burst, polite enough to share the CPU.
const SPIN_SWEEPS: u32 = 64;

/// An admitted connection waiting for a reactor.
struct Job {
    stream: TcpStream,
    accepted: Instant,
}

/// The bounded admission queue.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    capacity: usize,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit a job, or hand it back when the queue is full.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut jobs = self.jobs.lock().expect("queue lock");
        if jobs.len() >= self.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        drop(jobs);
        self.ready.notify_one();
        Ok(())
    }

    /// Take the next waiting job, never blocking.
    fn try_pop(&self) -> Option<Job> {
        self.jobs.lock().expect("queue lock").pop_front()
    }

    /// Park until a job may be ready (or `timeout`); the caller loops.
    fn wait(&self, timeout: Duration) {
        let jobs = self.jobs.lock().expect("queue lock");
        let _ = self.ready.wait_timeout(jobs, timeout).expect("queue lock");
    }

    fn len(&self) -> usize {
        self.jobs.lock().expect("queue lock").len()
    }
}

/// A running daemon: listener + queue + reactor pool.
pub struct MappingServer {
    service: Arc<MappingService>,
    queue: Arc<Queue>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl MappingServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting. Reactor count and queue bound come from the service's
    /// [`ServiceConfig`](crate::service::ServiceConfig) (`workers`).
    pub fn bind(service: MappingService, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(service);
        let queue = Arc::new(Queue::new(service.config().queue_capacity));

        let reactors = service.config().workers.max(1);
        // Splitting the admission bound across reactors keeps the
        // *total* number of adopted connections at the configured
        // capacity — the same bound the queue enforced when workers
        // owned one connection each.
        let conn_cap = (queue.capacity / reactors).max(1);
        let workers = (0..reactors)
            .map(|w| {
                let service = Arc::clone(&service);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("geomap-worker-{w}"))
                    .spawn(move || reactor_loop(w, conn_cap, &service, &queue))
                    .expect("spawn reactor")
            })
            .collect();

        let accept = {
            let service = Arc::clone(&service);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("geomap-accept".into())
                .spawn(move || accept_loop(listener, &service, &queue))
                .expect("spawn accept loop")
        };

        Ok(Self {
            service,
            queue,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    pub fn service(&self) -> &Arc<MappingService> {
        &self.service
    }

    /// Connections admitted but not yet adopted by a reactor.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Begin graceful shutdown without waiting (equivalent to a
    /// `shutdown` request arriving over the wire).
    pub fn stop(&self) {
        self.service.begin_shutdown();
        self.queue.ready.notify_all();
    }

    /// Begin shutdown (if not already begun), drain the queue, join
    /// every thread and flush the observability sinks.
    pub fn join(mut self) {
        self.stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.service.flush();
    }
}

impl Drop for MappingServer {
    fn drop(&mut self) {
        // A dropped server still shuts down cleanly; `join` is the
        // explicit, blocking variant.
        self.stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.service.flush();
    }
}

fn accept_loop(listener: TcpListener, service: &MappingService, queue: &Queue) {
    while !service.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Admitted sockets stay nonblocking: the reactor's
                // readiness loop owns all waiting.
                let _ = stream.set_nonblocking(true);
                let job = Job {
                    stream,
                    accepted: Instant::now(),
                };
                match queue.try_push(job) {
                    Ok(()) => service.note_queue_depth(queue.len() as u64),
                    Err(mut job) => {
                        // Backpressure: refuse right now, on the accept
                        // thread, so the queue bound actually bounds memory
                        // and latency instead of growing a buffer. The write
                        // is best-effort and nonblocking — the accept loop
                        // must never stall on a peer's receive window (the
                        // one-line error fits a fresh send buffer anyway).
                        let resp = service.reject(
                            "",
                            ErrorCode::OverCapacity,
                            format!(
                                "admission queue full ({} waiting); retry later",
                                queue.capacity
                            ),
                        );
                        let mut line = resp.to_line();
                        line.push('\n');
                        let _ = job.stream.write_all(line.as_bytes());
                        let _ = job.stream.flush();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // Dropping the listener here closes the socket: new connections are
    // refused while the reactors drain what was admitted.
}

/// One adopted connection's state between sweeps.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet parsed into complete messages.
    inbuf: Vec<u8>,
    /// Responses encoded but not yet accepted by the socket.
    outbuf: Vec<u8>,
    /// Queue wait measured at adoption; charged to the first request
    /// and used as the queue component of every deadline check on this
    /// connection (follow-ups arrived on an already-adopted socket).
    queue_wait: Duration,
    first: bool,
    last_activity: Instant,
    /// Peer closed its write side; flush what we owe, then close.
    eof: bool,
    /// Stop parsing, close once `outbuf` drains.
    close_after_flush: bool,
    /// Lingering-close countdown after an oversized request: bytes we
    /// still consume (and discard) so the peer can finish sending and
    /// read the error before we hang up.
    drain_remaining: Option<usize>,
}

impl Conn {
    fn adopt(job: Job) -> Self {
        Self {
            stream: job.stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            queue_wait: job.accepted.elapsed(),
            first: true,
            last_activity: Instant::now(),
            eof: false,
            close_after_flush: false,
            drain_remaining: None,
        }
    }

    /// Push pending response bytes into the socket. `Ok(true)` when the
    /// buffer fully drained, `Ok(false)` on socket backpressure.
    fn flush(&mut self, service: &MappingService) -> std::io::Result<bool> {
        if self.outbuf.is_empty() {
            return Ok(true);
        }
        let started = Instant::now();
        let mut written = 0usize;
        let drained = loop {
            match self.stream.write(&self.outbuf[written..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => {
                    written += n;
                    if written == self.outbuf.len() {
                        break true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break false,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        if written > 0 {
            self.outbuf.drain(..written);
            self.last_activity = Instant::now();
            service.record_respond(started.elapsed().as_secs_f64());
            let _ = self.stream.flush();
        }
        Ok(drained)
    }

    /// Read whatever the socket has, up to the per-sweep burst bound.
    /// Returns bytes read; sets `eof` on a clean peer close.
    fn fill(&mut self) -> std::io::Result<usize> {
        let mut total = 0usize;
        let mut chunk = [0u8; 16 << 10];
        while total < READ_BURST {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    total += n;
                    if let Some(remaining) = self.drain_remaining.as_mut() {
                        // Lingering close: consume, never buffer.
                        *remaining = remaining.saturating_sub(n);
                        if *remaining == 0 {
                            self.close_after_flush = true;
                            break;
                        }
                    } else {
                        self.inbuf.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if total > 0 {
            self.last_activity = Instant::now();
        }
        Ok(total)
    }
}

/// One complete message extracted from a connection buffer.
enum Extract {
    /// Nothing complete yet; keep the bytes and read more.
    Pending,
    /// A v1 line: `consumed` bytes including the `\n`, line body is
    /// `buf[..line_len]` (terminators stripped).
    Line { line_len: usize, consumed: usize },
    /// A v2 frame, fully decoded; `consumed` bytes.
    Framed { frame: Frame, consumed: usize },
    /// A v1 line exceeded [`MAX_LINE_BYTES`] without terminating.
    TooLong,
    /// The byte stream is not a valid frame and cannot be resynced.
    Broken(FrameError),
}

/// Extract the next complete message from `buf` (leading blank lines
/// already skipped). Pure function over bytes — the unit tests below
/// drive it byte-by-byte to prove no split (TCP fragmentation, tiny
/// reads) changes what is extracted.
fn extract_message(buf: &[u8]) -> Extract {
    if buf.is_empty() {
        return Extract::Pending;
    }
    if buf[0] == frame::FRAME_MAGIC {
        return match Frame::decode(buf) {
            Ok((frame, consumed)) => Extract::Framed { frame, consumed },
            Err(FrameError::Truncated { .. }) => Extract::Pending,
            // Oversized, bad version, bad kind: the stream cannot be
            // resynced mid-frame; the caller answers and hangs up.
            Err(e) => Extract::Broken(e),
        };
    }
    match buf.iter().position(|&b| b == b'\n') {
        Some(nl) if nl > MAX_LINE_BYTES => Extract::TooLong,
        Some(nl) => {
            let mut line_len = nl;
            while line_len > 0 && buf[line_len - 1] == b'\r' {
                line_len -= 1;
            }
            Extract::Line {
                line_len,
                consumed: nl + 1,
            }
        }
        None if buf.len() > MAX_LINE_BYTES => Extract::TooLong,
        None => Extract::Pending,
    }
}

fn reactor_loop(index: usize, conn_cap: usize, service: &MappingService, queue: &Queue) {
    let trace = service.config().trace.clone();
    let track = trace.track("service", &format!("worker-{index}"));
    let scope = TraceScope::new(&trace, track);
    let mut conns: Vec<Conn> = Vec::new();
    let mut idle_sweeps = 0u32;
    loop {
        let mut progress = false;
        // Batch admission: adopt everything waiting, up to this
        // reactor's share of the bound, in one go.
        let mut adopted = false;
        while conns.len() < conn_cap {
            match queue.try_pop() {
                Some(job) => {
                    conns.push(Conn::adopt(job));
                    adopted = true;
                    progress = true;
                }
                None => break,
            }
        }
        if adopted {
            service.note_queue_depth(queue.len() as u64);
        }
        conns.retain_mut(|conn| {
            let (keep, moved) = sweep(conn, service, queue, index, &scope);
            progress |= moved;
            keep
        });
        if conns.is_empty() {
            if service.is_shutting_down() && queue.len() == 0 {
                return;
            }
            queue.wait(POLL);
            continue;
        }
        if progress {
            idle_sweeps = 0;
        } else {
            // Readiness polling without epoll: spin politely first (a
            // pipelined burst usually lands within a few sweeps), then
            // back off to a short sleep so an idle daemon costs ~nothing.
            idle_sweeps += 1;
            if idle_sweeps <= SPIN_SWEEPS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
}

/// One readiness sweep over one connection: flush, read, answer every
/// complete message, flush again. Returns `(keep, made_progress)`.
fn sweep(
    conn: &mut Conn,
    service: &MappingService,
    queue: &Queue,
    worker: usize,
    scope: &TraceScope<'_>,
) -> (bool, bool) {
    let mut progress = false;
    match conn.flush(service) {
        Ok(true) => {}
        Ok(false) => progress = true, // partial write: socket was busy
        Err(_) => return (false, true),
    }
    match conn.fill() {
        Ok(0) => {}
        Ok(_) => progress = true,
        Err(_) => return (false, true),
    }
    if conn.drain_remaining.is_none() && !conn.close_after_flush {
        progress |= answer_buffered(conn, service, queue, worker, scope);
    }
    match conn.flush(service) {
        Ok(drained) => {
            let done_writing = drained && conn.outbuf.is_empty();
            if done_writing && conn.close_after_flush {
                return (false, true);
            }
            if done_writing && conn.eof && conn.drain_remaining.is_none() {
                return (false, progress);
            }
            // Draining ends at EOF too (the peer gave up sending).
            if conn.eof && conn.drain_remaining.is_some() {
                return (false, true);
            }
            if done_writing
                && service.is_shutting_down()
                && conn.inbuf.iter().all(|&b| b == b'\n' || b == b'\r')
            {
                // Shutdown: nothing owed, nothing pending — close so
                // `join` never waits on an idle client.
                return (false, true);
            }
        }
        Err(_) => return (false, true),
    }
    if conn.last_activity.elapsed() > IDLE_TIMEOUT {
        return (false, true);
    }
    (true, progress)
}

/// Answer every complete message currently buffered on `conn`,
/// appending responses to its `outbuf`. Returns true when any message
/// was processed.
fn answer_buffered(
    conn: &mut Conn,
    service: &MappingService,
    queue: &Queue,
    worker: usize,
    scope: &TraceScope<'_>,
) -> bool {
    let mut pos = 0usize;
    let mut progress = false;
    loop {
        if conn.outbuf.len() >= OUT_HIGH_WATER {
            // The peer isn't reading; stop generating responses it has
            // no room for. The unparsed bytes keep until it catches up.
            break;
        }
        while pos < conn.inbuf.len() && (conn.inbuf[pos] == b'\n' || conn.inbuf[pos] == b'\r') {
            pos += 1;
        }
        match extract_message(&conn.inbuf[pos..]) {
            Extract::Pending => {
                // EOF with a partial v1 line: the unterminated tail is
                // the final request (a frame fragment is unanswerable).
                if conn.eof
                    && pos < conn.inbuf.len()
                    && conn.inbuf[pos] != frame::FRAME_MAGIC
                    && conn.inbuf.len() - pos <= MAX_LINE_BYTES
                {
                    let line = String::from_utf8_lossy(&conn.inbuf[pos..]).into_owned();
                    pos = conn.inbuf.len();
                    progress = true;
                    respond_line(conn, service, queue, worker, scope, &line);
                }
                break;
            }
            Extract::Line { line_len, consumed } => {
                let line = String::from_utf8_lossy(&conn.inbuf[pos..pos + line_len]).into_owned();
                pos += consumed;
                progress = true;
                respond_line(conn, service, queue, worker, scope, &line);
                if conn.close_after_flush {
                    break;
                }
            }
            Extract::Framed { frame, consumed } => {
                pos += consumed;
                progress = true;
                if frame.kind != frame::FrameKind::Request {
                    let resp = service.reject(
                        "",
                        ErrorCode::BadRequest,
                        "expected a request frame, got a response frame".to_string(),
                    );
                    push_frame(conn, &resp, frame.corr_id);
                    conn.close_after_flush = true;
                    break;
                }
                let request = match frame::decode_request_payload(&frame.payload) {
                    Ok(req) => req,
                    Err(bad) => {
                        let resp = service.reject(&bad.id, bad.code, bad.message);
                        push_frame(conn, &resp, frame.corr_id);
                        continue;
                    }
                };
                let response = answer(conn, service, queue, worker, scope, request);
                let shutdown_now = matches!(response, Response::Shutdown { .. });
                push_frame(conn, &response, frame.corr_id);
                if shutdown_now {
                    conn.close_after_flush = true;
                    break;
                }
            }
            Extract::TooLong => {
                let resp = service.reject(
                    "",
                    ErrorCode::BadRequest,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                push_line(conn, &resp);
                // Lingering close: keep consuming (bounded) so the
                // peer's send isn't cut off by a reset before it reads
                // our error line.
                conn.drain_remaining = Some(DRAIN_LIMIT);
                pos = conn.inbuf.len();
                progress = true;
                break;
            }
            Extract::Broken(e) => {
                let corr = Frame::peek_corr_id(&conn.inbuf[pos..]).unwrap_or(0);
                let code = match e {
                    FrameError::BadVersion(_) => ErrorCode::UnsupportedVersion,
                    _ => ErrorCode::BadRequest,
                };
                let resp = service.reject("", code, e.to_string());
                push_frame(conn, &resp, corr);
                conn.close_after_flush = true;
                progress = true;
                break;
            }
        }
    }
    if pos > 0 {
        conn.inbuf.drain(..pos);
    }
    if conn.drain_remaining.is_some() {
        conn.inbuf.clear();
    }
    progress
}

/// Answer one v1 line, encoding the response as a v1 line.
fn respond_line(
    conn: &mut Conn,
    service: &MappingService,
    queue: &Queue,
    worker: usize,
    scope: &TraceScope<'_>,
    line: &str,
) {
    if line.trim().is_empty() {
        return;
    }
    let response = match Request::from_line(line) {
        Err(bad) => service.reject(&bad.id, bad.code, bad.message),
        Ok(request) => answer(conn, service, queue, worker, scope, request),
    };
    let shutdown_now = matches!(response, Response::Shutdown { .. });
    push_line(conn, &response);
    if shutdown_now {
        conn.close_after_flush = true;
    }
}

/// Answer one decoded request. The first request on a connection is
/// charged the measured queue wait; pipelined follow-ups on the same
/// connection never waited, so they report zero.
fn answer(
    conn: &mut Conn,
    service: &MappingService,
    queue: &Queue,
    worker: usize,
    scope: &TraceScope<'_>,
    request: Request,
) -> Response {
    let queue_wait_s = if conn.first {
        conn.queue_wait.as_secs_f64()
    } else {
        0.0
    };
    conn.first = false;
    match request {
        Request::Shutdown { id } => {
            service.begin_shutdown();
            Response::Shutdown {
                id,
                draining: queue.len() as u64,
            }
        }
        Request::Map(m) => {
            let deadline = m
                .deadline_ms
                .map(Duration::from_millis)
                .or(service.config().default_deadline);
            if deadline.is_some_and(|d| conn.queue_wait > d) {
                service.reject(
                    &m.id,
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "spent {:.0} ms in queue, deadline was {} ms",
                        conn.queue_wait.as_secs_f64() * 1e3,
                        deadline.unwrap_or_default().as_millis()
                    ),
                )
            } else {
                if scope.enabled() {
                    // The wait already happened (between accept and
                    // adoption), so the span is backdated; the ring
                    // export sorts by timestamp.
                    let now = scope.trace.now();
                    scope
                        .trace
                        .span_begin(scope.track, "queue_wait", now - queue_wait_s);
                    scope.trace.span_end(scope.track, "queue_wait", now);
                }
                scope.span_begin("request");
                let out = service.handle_map_on(&m, queue_wait_s, worker, *scope);
                scope.span_end("request");
                out
            }
        }
        other => service.handle_on(&other, worker, *scope),
    }
}

fn push_line(conn: &mut Conn, response: &Response) {
    let line = response.to_line();
    conn.outbuf.reserve(line.len() + 1);
    conn.outbuf.extend_from_slice(line.as_bytes());
    conn.outbuf.push(b'\n');
}

fn push_frame(conn: &mut Conn, response: &Response, corr_id: u64) {
    conn.outbuf
        .extend_from_slice(&frame::encode_response(response, corr_id));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a multi-byte UTF-8 character arriving split across
    /// reads must survive intact. Feeding the buffer one byte at a time
    /// forces every character across a read boundary — extraction only
    /// fires on the complete line, and the lossy conversion happens
    /// once, over the whole line, never per chunk.
    #[test]
    fn multibyte_characters_survive_read_boundaries() {
        let text = "id-é-日本語-🦀-end";
        let wire = format!("{text}\nnext");
        let mut buf: Vec<u8> = Vec::new();
        let mut extracted = None;
        for &b in wire.as_bytes() {
            buf.push(b);
            match extract_message(&buf) {
                Extract::Pending => continue,
                Extract::Line { line_len, consumed } => {
                    extracted = Some(String::from_utf8_lossy(&buf[..line_len]).into_owned());
                    buf.drain(..consumed);
                    break;
                }
                _ => panic!("unexpected extraction"),
            }
        }
        assert_eq!(extracted.as_deref(), Some(text));
    }

    /// A frame fed one byte at a time stays `Pending` until its last
    /// byte, then decodes whole — no split of the length prefix or
    /// payload changes the outcome.
    #[test]
    fn frames_survive_byte_by_byte_arrival() {
        let response = Response::Shutdown {
            id: "x".into(),
            draining: 2,
        };
        let wire = frame::encode_response(&response, 77);
        let mut buf: Vec<u8> = Vec::new();
        for (i, &b) in wire.iter().enumerate() {
            buf.push(b);
            match extract_message(&buf) {
                Extract::Pending => assert!(i + 1 < wire.len(), "complete frame stayed pending"),
                Extract::Framed { frame, consumed } => {
                    assert_eq!(i + 1, wire.len(), "decoded before the last byte");
                    assert_eq!(consumed, wire.len());
                    assert_eq!(frame.corr_id, 77);
                }
                _ => panic!("unexpected extraction at byte {i}"),
            }
        }
    }

    #[test]
    fn unterminated_line_past_the_bound_is_too_long() {
        let wire = vec![b'x'; MAX_LINE_BYTES + 1];
        assert!(matches!(extract_message(&wire), Extract::TooLong));
    }

    #[test]
    fn carriage_returns_are_stripped_from_lines() {
        match extract_message(b"hello\r\nrest") {
            Extract::Line { line_len, consumed } => {
                assert_eq!(line_len, 5);
                assert_eq!(consumed, 7);
            }
            _ => panic!("expected a line"),
        }
    }

    #[test]
    fn broken_frames_are_fatal_not_pending() {
        // A valid magic byte with a hostile declared length.
        let mut wire = vec![frame::FRAME_MAGIC, frame::FRAME_VERSION, 1];
        wire.extend_from_slice(&7u64.to_le_bytes());
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        match extract_message(&wire) {
            Extract::Broken(FrameError::Oversized { .. }) => {}
            _ => panic!("expected an oversized-frame error"),
        }
    }
}
