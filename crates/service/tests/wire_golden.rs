//! Golden wire fixtures: the exact bytes both protocols put on the
//! wire for a fixed corpus, checked into `tests/fixtures/`.
//!
//! The frame layout (magic, version, kind, correlation id, length
//! prefix, payload tags, field order) is a compatibility contract with
//! every deployed peer: an accidental reordering or width change would
//! pass the roundtrip suites — encoder and decoder drift together — but
//! break the wire. These tests catch exactly that drift: any change to
//! the serialized bytes shows up as a readable hex diff against the
//! checked-in fixture.
//!
//! Intentional format changes regenerate the fixtures with
//! `UPDATE_GOLDEN=1 cargo test -p geomap-service --test wire_golden`
//! — the diff then documents the change in review.

use geomap_service::frame;
use geomap_service::hist::{Histogram, SCHEMA_VERSION};
use geomap_service::proto::{
    CacheTier, CalibSpec, ErrorCode, ErrorResponse, HistSummary, MapRequest, MapResponse, Request,
    Response, StatsDetail, StatsResponse, TraceContext, TraceDumpResponse, WireTraceEvent,
    WireTrack,
};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The pinned corpus: fixed values only — every byte these produce is
/// part of the golden contract.
fn request_corpus() -> Vec<(&'static str, u64, Request)> {
    let mut full = MapRequest::new("golden-é", "src,dst,bytes,msgs\n0,1,5,2\n1,0,7,3\n");
    full.ranks = Some(2);
    full.constraints_csv = Some("process,site\n0,1\n".into());
    full.algorithm = "montecarlo".into();
    full.seed = 424242;
    full.kappa = 9;
    full.samples = 1500;
    full.calibration = CalibSpec {
        days: 3,
        probes_per_day: 24,
        noise_cv: 0.25,
        loss_rate: 0.125,
        seed: 7,
    };
    full.deadline_ms = Some(2_000);
    full.reserve = true;
    full.lease_ttl_ms = Some(60_000);
    full.use_result_cache = false;
    full.idempotency_key = Some("key-\"q\"-\\s".into());

    vec![
        (
            "map minimal",
            1,
            Request::Map(MapRequest::new("bare", "src,dst,bytes,msgs\n0,1,1,1\n")),
        ),
        ("map full", 2, Request::Map(full)),
        (
            "release",
            3,
            Request::Release {
                id: "rel".into(),
                lease: 12345,
            },
        ),
        (
            "stats",
            4,
            Request::Stats {
                id: "st".into(),
                detail: false,
            },
        ),
        ("shutdown", 5, Request::Shutdown { id: "bye".into() }),
        // PR 8 extensions — appended so every pre-existing block above
        // keeps its exact bytes (trace-free and detail-free encodings
        // must stay bit-identical to the PR 7 fixtures).
        (
            "map traced",
            6,
            Request::Map(MapRequest {
                trace: Some(TraceContext {
                    trace_id: 0x000F_EED5_C0FF_EE42,
                    parent_span: 77,
                    sampled: true,
                }),
                ..MapRequest::new("traced", "src,dst,bytes,msgs\n0,1,1,1\n")
            }),
        ),
        (
            "stats detail",
            7,
            Request::Stats {
                id: "st-d".into(),
                detail: true,
            },
        ),
        ("trace dump", 8, Request::TraceDump { id: "td".into() }),
    ]
}

/// A deterministic histogram summary for the detail-stats golden: three
/// fixed samples through the real bucketing code.
fn golden_hist() -> HistSummary {
    let mut h = Histogram::default();
    h.record(10); // exact bucket
    h.record(1_000); // log-linear region
    h.record(250_000);
    HistSummary::from_histogram("map_e2e", &h)
}

fn response_corpus() -> Vec<(&'static str, u64, Response)> {
    vec![
        (
            "map",
            1,
            Response::Map(MapResponse {
                id: "golden-é".into(),
                mapping: vec![0, 3, 1, 2],
                cost: 1234.5625, // exactly representable: stable bits
                cached: CacheTier::Result,
                queue_wait_s: 0.5,
                solve_s: 0.25,
                lease: Some(7),
                site_counts: vec![1, 1, 1, 1],
                free_nodes: vec![3, 3, 3, 3],
                degraded: true,
                staleness: 2,
            }),
        ),
        (
            "release",
            2,
            Response::Release {
                id: "rel".into(),
                freed: vec![4, 0, 0, 0],
                free_nodes: vec![4, 4, 4, 4],
            },
        ),
        (
            "stats",
            3,
            Response::Stats(StatsResponse {
                id: "st".into(),
                served: 100,
                result_hits: 40,
                problem_hits: 20,
                misses: 40,
                rejected: 5,
                replays: 3,
                free_nodes: vec![16],
                active_leases: 2,
                detail: None,
            }),
        ),
        (
            "shutdown",
            4,
            Response::Shutdown {
                id: "bye".into(),
                draining: 6,
            },
        ),
        (
            "error",
            5,
            Response::Error(ErrorResponse {
                id: "err".into(),
                code: ErrorCode::OverCapacity,
                message: "admission queue full (8 waiting); retry later".into(),
            }),
        ),
        // PR 8 extensions — appended; blocks above stay byte-stable.
        (
            "stats detail",
            6,
            Response::Stats(StatsResponse {
                id: "st-d".into(),
                served: 100,
                result_hits: 40,
                problem_hits: 20,
                misses: 40,
                rejected: 5,
                replays: 3,
                free_nodes: vec![16],
                active_leases: 2,
                detail: Some(StatsDetail {
                    hist_schema: SCHEMA_VERSION,
                    queue_depth: 1,
                    max_queue_depth: 4,
                    leased_nodes: vec![2],
                    hists: vec![golden_hist()],
                    shards: 1,
                }),
            }),
        ),
        (
            "trace dump",
            7,
            Response::TraceDump(TraceDumpResponse {
                id: "td".into(),
                now_s: 1.5,
                dropped: 1,
                tracks: vec![WireTrack {
                    track: 0,
                    process: "service".into(),
                    name: "worker-0".into(),
                }],
                events: vec![
                    WireTraceEvent {
                        track: 0,
                        name: "request".into(),
                        kind: WireTraceEvent::SPAN_BEGIN,
                        ts_s: 0.25,
                        value: 0.0,
                    },
                    WireTraceEvent {
                        track: 0,
                        name: "trace".into(),
                        kind: WireTraceEvent::COUNTER,
                        ts_s: 0.25,
                        value: 4503599627370495.0, // 2^52 - 1: f64-exact
                    },
                    WireTraceEvent {
                        track: 0,
                        name: "request".into(),
                        kind: WireTraceEvent::SPAN_END,
                        ts_s: 0.5,
                        value: 0.0,
                    },
                ],
            }),
        ),
    ]
}

/// Render one wire message as a labelled hex block: 16 bytes per line,
/// with an ASCII gutter, so a fixture diff reads like a debugger dump.
fn hex_block(out: &mut String, label: &str, bytes: &[u8]) {
    writeln!(out, "== {label} ({} bytes)", bytes.len()).unwrap();
    for row in bytes.chunks(16) {
        let hex: Vec<String> = row.iter().map(|b| format!("{b:02x}")).collect();
        let ascii: String = row
            .iter()
            .map(|&b| {
                if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                }
            })
            .collect();
        writeln!(out, "{:<48} |{ascii}|", hex.join(" ")).unwrap();
    }
    out.push('\n');
}

fn render_v2() -> String {
    let mut out = String::from(
        "# Golden v2 binary frames. Regenerate with UPDATE_GOLDEN=1 (see wire_golden.rs).\n\n",
    );
    for (label, corr, request) in request_corpus() {
        hex_block(
            &mut out,
            &format!("request: {label}"),
            &frame::encode_request(&request, corr),
        );
    }
    for (label, corr, response) in response_corpus() {
        hex_block(
            &mut out,
            &format!("response: {label}"),
            &frame::encode_response(&response, corr),
        );
    }
    out
}

fn render_v1() -> String {
    let mut out = String::from(
        "# Golden v1 JSON lines. Regenerate with UPDATE_GOLDEN=1 (see wire_golden.rs).\n\n",
    );
    for (label, _, request) in request_corpus() {
        writeln!(out, "== request: {label}\n{}", request.to_line()).unwrap();
    }
    for (label, _, response) in response_corpus() {
        writeln!(out, "== response: {label}\n{}", response.to_line()).unwrap();
    }
    out
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_golden(name: &str, rendered: String) {
    let path = fixture_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixtures dir");
        std::fs::write(&path, &rendered).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test -p geomap-service --test wire_golden",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "wire bytes drifted from {}. If the format change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and include the fixture diff in review.",
        path.display()
    );
}

#[test]
fn v2_frames_match_the_golden_fixture() {
    check_golden("frames_v2.hex", render_v2());
}

#[test]
fn v1_lines_match_the_golden_fixture() {
    check_golden("lines_v1.txt", render_v1());
}

/// The golden corpus must itself decode — a fixture pinning bytes no
/// decoder accepts would freeze a bug, not a contract.
#[test]
fn golden_corpus_decodes_through_both_protocols() {
    for (label, corr, request) in request_corpus() {
        let wire = frame::encode_request(&request, corr);
        let (f, _) = frame::Frame::decode(&wire).expect(label);
        assert_eq!(f.corr_id, corr, "{label}");
        assert_eq!(
            frame::decode_request_payload(&f.payload).expect(label),
            request,
            "{label}"
        );
        assert_eq!(
            Request::from_line(&request.to_line()).expect(label),
            request
        );
    }
    for (label, corr, response) in response_corpus() {
        let wire = frame::encode_response(&response, corr);
        let (got_corr, decoded) =
            geomap_service::wire::WireFormat::decode_response(&wire).expect(label);
        assert_eq!(got_corr, corr, "{label}");
        assert_eq!(decoded, response, "{label}");
        assert_eq!(
            Response::from_line(&response.to_line()).expect(label),
            response
        );
    }
}
