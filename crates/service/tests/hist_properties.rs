//! Property tests for the log-linear latency histogram.
//!
//! The histogram is the unit of *exact* cross-shard aggregation: the
//! federation router merges per-daemon bucket dumps and recomputes
//! percentiles from the merged counts, never averaging percentiles.
//! That is only sound if merging is a homomorphism (associative,
//! commutative, identity = empty) and the bucketing keeps every
//! recorded value within its bucket's bounds — exactly the properties
//! swept here.
//!
//! Case counts honor `HIST_PROPTEST_CASES` (falling back to
//! `JSON_PROPTEST_CASES` so CI's reduced sweeps tune every layer with
//! one knob).

use geomap_service::hist::{
    bucket_bound, bucket_index, bucket_lower, bucket_width, HistKind, HistSet, Histogram, Sharded,
    BUCKET_COUNT,
};
use proptest::prelude::*;

fn cases(default: u32) -> u32 {
    ["HIST_PROPTEST_CASES", "JSON_PROPTEST_CASES"]
        .iter()
        .find_map(|var| std::env::var(var).ok()?.parse().ok())
        .unwrap_or(default)
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Bucket-level equality (the wire representation): counts, totals and
/// extrema all agree.
fn same(a: &Histogram, b: &Histogram) -> bool {
    a.nonzero_buckets() == b.nonzero_buckets()
        && a.count() == b.count()
        && a.sum() == b.sum()
        && a.min() == b.min()
        && a.max() == b.max()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(128)))]

    /// merge(merge(a, b), c) == merge(a, merge(b, c)) on every
    /// observable: bucket dump, count, sum, extrema.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..u64::MAX, 0..24),
        b in prop::collection::vec(0u64..u64::MAX, 0..24),
        c in prop::collection::vec(0u64..u64::MAX, 0..24),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);
        prop_assert!(same(&left, &right));
    }

    /// merge(a, b) == merge(b, a), and merging the empty histogram is
    /// the identity.
    #[test]
    fn merge_is_commutative_with_empty_identity(
        a in prop::collection::vec(0u64..u64::MAX, 0..32),
        b in prop::collection::vec(0u64..u64::MAX, 0..32),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert!(same(&ab, &ba));
        let mut with_empty = ha.clone();
        with_empty.merge(&Histogram::new());
        prop_assert!(same(&with_empty, &ha));
    }

    /// Merging equals recording the concatenation — the property the
    /// router's scatter-gather aggregation actually relies on.
    #[test]
    fn merge_equals_concatenated_recording(
        a in prop::collection::vec(0u64..u64::MAX, 0..32),
        b in prop::collection::vec(0u64..u64::MAX, 0..32),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert!(same(&merged, &hist_of(&concat)));
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_are_monotone_and_bracketed(
        values in prop::collection::vec(0u64..u64::MAX, 1..64),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = hist_of(&values);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let (vlo, vhi) = (h.quantile(lo).unwrap(), h.quantile(hi).unwrap());
        prop_assert!(vlo <= vhi, "q{lo} -> {vlo} > q{hi} -> {vhi}");
        // The reported quantile can exceed max only by quantization
        // (it is a bucket bound), never undershoot min's bucket.
        prop_assert!(vhi <= bucket_bound(bucket_index(h.max().unwrap())));
        prop_assert!(vlo >= bucket_lower(bucket_index(h.min().unwrap())));
    }

    /// Every value lands in the bucket whose bounds contain it, and
    /// the relative quantization error is bounded by the bucket width.
    #[test]
    fn recorded_values_stay_within_their_bucket(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKET_COUNT);
        // `bucket_bound` is the *inclusive* upper bound (Prometheus
        // `le` semantics): bound = lower + width - 1.
        let (lo, bound) = (bucket_lower(i), bucket_bound(i));
        if i + 1 < BUCKET_COUNT {
            prop_assert!(lo <= v && v <= bound, "{v} outside [{lo}, {bound}]");
        } else {
            prop_assert!(v >= lo, "{v} below the clamp bucket at {lo}");
        }
        prop_assert_eq!(bound - lo, bucket_width(i) - 1);
        // A single-value histogram answers every quantile with that
        // value's own bucket bound — error ≤ one bucket width.
        let h = hist_of(&[v]);
        let q = h.quantile(0.5).unwrap();
        prop_assert!(q >= lo && q <= bound, "quantile {q} escaped [{lo}, {bound}]");
    }
}

#[test]
fn empty_histogram_answers_nothing() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.min(), None);
    assert_eq!(h.max(), None);
    assert_eq!(h.quantile(0.5), None);
    assert!(h.nonzero_buckets().is_empty());
}

#[test]
fn single_value_histogram_is_exact_in_the_exact_region() {
    // Values below 2^SUB_BUCKET_BITS have unit-width buckets: every
    // quantile is the value itself (bucket bound = v + 1 is the
    // documented half-open convention, so the bound's lower edge).
    for v in [0u64, 1, 7, 15] {
        let h = hist_of(&[v]);
        assert_eq!(h.min(), Some(v));
        assert_eq!(h.max(), Some(v));
        assert_eq!(h.count(), 1);
        let q = h.quantile(0.999).unwrap();
        assert!(
            q == v || q == v + 1,
            "exact-region value {v} answered quantile {q}"
        );
    }
}

/// Sixteen writer threads against one `Sharded` histogram while a
/// reader snapshots concurrently: every snapshot is internally
/// consistent (Σ bucket counts == count) and the final merge holds
/// exactly the recorded population.
#[test]
fn concurrent_records_never_tear_snapshots() {
    const THREADS: usize = 16;
    const PER_THREAD: u64 = 2_000;
    let sharded = Sharded::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sharded = &sharded;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across the bucket range.
                    sharded.record(t, (i * 7 + t as u64) % 1_000_000);
                }
            });
        }
        // Concurrent reader: merged snapshots mid-flight must be
        // self-consistent even while counts are still climbing.
        let sharded = &sharded;
        scope.spawn(move || {
            for _ in 0..50 {
                let snap = sharded.merged();
                let bucket_total: u64 = snap.nonzero_buckets().iter().map(|&(_, c)| c).sum();
                assert_eq!(
                    bucket_total,
                    snap.count(),
                    "snapshot tore: bucket sum disagrees with count"
                );
                std::thread::yield_now();
            }
        });
    });
    let final_merge = sharded.merged();
    assert_eq!(final_merge.count(), (THREADS as u64) * PER_THREAD);
    let bucket_total: u64 = final_merge.nonzero_buckets().iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, final_merge.count());
}

/// The `HistSet` facade: off() records nothing and merges empty; new()
/// routes every kind independently.
#[test]
fn hist_set_off_and_kind_routing() {
    let off = HistSet::off();
    assert!(!off.enabled());
    off.record_secs(HistKind::MapE2e, 0, 0.5);
    assert_eq!(off.merged(HistKind::MapE2e).count(), 0);

    let on = HistSet::new(2);
    assert!(on.enabled());
    on.record_secs(HistKind::MapE2e, 0, 0.001);
    on.record_secs(HistKind::MapE2e, 1, 0.002);
    on.record_secs(HistKind::ReleaseE2e, 0, 0.003);
    assert_eq!(on.merged(HistKind::MapE2e).count(), 2);
    assert_eq!(on.merged(HistKind::ReleaseE2e).count(), 1);
    assert_eq!(on.merged(HistKind::StatsE2e).count(), 0);
    // 1 ms and 2 ms land in distinct buckets; the merge keeps both.
    assert_eq!(on.merged(HistKind::MapE2e).nonzero_buckets().len(), 2);
}
