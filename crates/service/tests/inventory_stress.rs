//! Concurrency stress for the cluster inventory and the service:
//! free-node counts never go negative / oversubscribe under any
//! interleaving, and same-seed requests produce bit-identical mappings
//! no matter how worker threads race.

use commgraph::apps::AppKind;
use geomap_service::inventory::ClusterInventory;
use geomap_service::proto::Response;
use geomap_service::{MapRequest, MappingService, Request, ServiceConfig};
use geonet::{presets, InstanceType};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn hammered_inventory_never_oversubscribes() {
    const THREADS: usize = 16;
    const ROUNDS: usize = 250;
    let capacities = vec![8usize, 6, 4, 10];
    let inv = Arc::new(ClusterInventory::new(capacities.clone()));
    let granted = Arc::new(AtomicUsize::new(0));
    let refused = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let inv = Arc::clone(&inv);
            let capacities = capacities.clone();
            let granted = Arc::clone(&granted);
            let refused = Arc::clone(&refused);
            std::thread::spawn(move || {
                let mut held: Vec<u64> = Vec::new();
                for round in 0..ROUNDS {
                    // Deterministic per-thread request shapes that mix
                    // small, large and infeasible asks.
                    let k = (t + round) % 4;
                    let ask: Vec<usize> = capacities
                        .iter()
                        .enumerate()
                        .map(|(j, &c)| if j == k { (c / 2).max(1) } else { round % 2 })
                        .collect();
                    let ttl = (round % 3 == 0).then(|| Duration::from_millis(1));
                    match inv.reserve(&ask, ttl) {
                        Ok(lease) => {
                            granted.fetch_add(1, Ordering::Relaxed);
                            if ttl.is_none() {
                                held.push(lease);
                            }
                        }
                        Err(e) => {
                            refused.fetch_add(1, Ordering::Relaxed);
                            // The refusal itself must be internally
                            // consistent, not just present.
                            assert!(e.wanted > e.free);
                        }
                    }
                    // Invariant probe under contention: free counts can
                    // never exceed capacity (conservation's upper face;
                    // the lower face — never negative — is typed away
                    // by usize and checked by debug asserts inside).
                    for (f, c) in inv.free_nodes().iter().zip(&capacities) {
                        assert!(f <= c, "free {f} exceeds capacity {c}");
                    }
                    if round % 5 == 4 {
                        for lease in held.drain(..) {
                            inv.release(lease).expect("held lease releases");
                        }
                    }
                }
                for lease in held {
                    inv.release(lease).expect("held lease releases");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread");
    }

    assert!(granted.load(Ordering::Relaxed) > 0, "stress never granted");
    assert!(refused.load(Ordering::Relaxed) > 0, "stress never refused");
    // Everything explicit was released and every TTL lease is long
    // expired: the ledger must balance back to full capacity.
    std::thread::sleep(Duration::from_millis(5));
    assert_eq!(inv.free_nodes(), capacities);
    assert_eq!(inv.active_leases(), 0);
}

// ------------------------------------------------------- TTL edges

/// Expiry is `expires <= now`: a lease is held through `deadline - ε`
/// and gone at exactly the deadline instant, driven by the explicit
/// clock so no wall time is involved.
#[test]
fn lease_expires_exactly_at_its_deadline_instant() {
    let inv = ClusterInventory::new(vec![4]);
    let t0 = std::time::Instant::now();
    let ttl = Duration::from_millis(100);
    inv.reserve_at(&[3], Some(ttl), t0).unwrap();

    // One nanosecond before the deadline the lease is still held…
    let just_before = t0 + ttl - Duration::from_nanos(1);
    assert_eq!(inv.free_nodes_at(just_before), vec![1]);
    assert_eq!(inv.leased_counts_at(just_before), vec![3]);

    // …and at the deadline instant itself it is gone.
    assert_eq!(inv.free_nodes_at(t0 + ttl), vec![4]);
    assert_eq!(inv.leased_counts_at(t0 + ttl), vec![0]);
}

/// Releasing after expiry must not double-free: the nodes came back at
/// expiry, so the explicit release is an error and counts are unmoved.
#[test]
fn release_after_expiry_is_an_error_not_a_double_free() {
    let inv = ClusterInventory::new(vec![2]);
    let t0 = std::time::Instant::now();
    let ttl = Duration::from_millis(1);
    let lease = inv.reserve_at(&[2], Some(ttl), t0).unwrap();

    // Observe past the deadline: the lease expires, nodes return.
    assert_eq!(inv.free_nodes_at(t0 + ttl), vec![2]);
    let err = inv.release(lease).unwrap_err();
    assert!(err.contains("unknown lease"), "{err}");
    assert_eq!(inv.free_nodes_at(t0 + ttl), vec![2], "double-free");

    // The freed capacity is genuinely reusable.
    let lease2 = inv.reserve_at(&[2], None, t0 + ttl).unwrap();
    assert_ne!(lease2, lease, "lease ids must not be recycled");
    assert_eq!(inv.release(lease2).unwrap(), vec![2]);
}

/// Many threads re-reserving nodes freed by 1 ms TTL expiries: expiry
/// and reservation race on the same mutex, and the winner count can
/// never exceed what actually expired — no oversubscription, ever.
#[test]
fn concurrent_rereservation_of_expired_nodes_never_oversubscribes() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 50;
    let capacities = vec![4usize];
    let inv = Arc::new(ClusterInventory::new(capacities.clone()));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let inv = Arc::clone(&inv);
            std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    // Every reservation self-expires almost immediately,
                    // so the threads constantly contend for nodes that
                    // are mid-expiry inside each other's operations.
                    let _ = inv.reserve(&[2], Some(Duration::from_millis(1)));
                    // One atomic snapshot: summing separate free_nodes()
                    // and leased_counts() calls races against expiry in
                    // between and is not a consistent view.
                    let (free, leased) = inv.ledger();
                    assert_eq!(
                        free[0] + leased[0],
                        4,
                        "conservation broken under expiry contention"
                    );
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("ttl contention thread");
    }

    // Long after the last 1 ms TTL: everything expired, ledger balanced.
    std::thread::sleep(Duration::from_millis(5));
    assert_eq!(inv.free_nodes(), capacities);
    assert_eq!(inv.active_leases(), 0);
    assert_eq!(inv.leased_counts(), vec![0]);
}

#[test]
fn same_seed_requests_are_bit_identical_across_worker_interleavings() {
    const THREADS: usize = 8;
    let svc = Arc::new(MappingService::new(
        presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42),
        ServiceConfig::default(),
    ));
    let csv = AppKind::parse("sp")
        .unwrap()
        .workload(16)
        .pattern()
        .to_csv();

    // All threads solve the same problem with the same seed, with the
    // result cache OFF so every thread really runs the optimizer; the
    // problem cache stays on, so threads race to fill it too.
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let csv = csv.clone();
            std::thread::spawn(move || {
                let req = MapRequest {
                    use_result_cache: false,
                    ..MapRequest::new(format!("t{t}"), csv)
                };
                match svc.handle(&Request::Map(req)) {
                    Response::Map(m) => (m.mapping, m.cost.to_bits()),
                    other => panic!("map failed: {other:?}"),
                }
            })
        })
        .collect();

    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results[1..] {
        assert_eq!(r.0, results[0].0, "mapping differs across interleavings");
        assert_eq!(r.1, results[0].1, "cost bits differ across interleavings");
    }
}
