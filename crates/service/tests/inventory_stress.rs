//! Concurrency stress for the cluster inventory and the service:
//! free-node counts never go negative / oversubscribe under any
//! interleaving, and same-seed requests produce bit-identical mappings
//! no matter how worker threads race.

use commgraph::apps::AppKind;
use geomap_service::inventory::ClusterInventory;
use geomap_service::proto::Response;
use geomap_service::{MapRequest, MappingService, Request, ServiceConfig};
use geonet::{presets, InstanceType};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn hammered_inventory_never_oversubscribes() {
    const THREADS: usize = 16;
    const ROUNDS: usize = 250;
    let capacities = vec![8usize, 6, 4, 10];
    let inv = Arc::new(ClusterInventory::new(capacities.clone()));
    let granted = Arc::new(AtomicUsize::new(0));
    let refused = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let inv = Arc::clone(&inv);
            let capacities = capacities.clone();
            let granted = Arc::clone(&granted);
            let refused = Arc::clone(&refused);
            std::thread::spawn(move || {
                let mut held: Vec<u64> = Vec::new();
                for round in 0..ROUNDS {
                    // Deterministic per-thread request shapes that mix
                    // small, large and infeasible asks.
                    let k = (t + round) % 4;
                    let ask: Vec<usize> = capacities
                        .iter()
                        .enumerate()
                        .map(|(j, &c)| if j == k { (c / 2).max(1) } else { round % 2 })
                        .collect();
                    let ttl = (round % 3 == 0).then(|| Duration::from_millis(1));
                    match inv.reserve(&ask, ttl) {
                        Ok(lease) => {
                            granted.fetch_add(1, Ordering::Relaxed);
                            if ttl.is_none() {
                                held.push(lease);
                            }
                        }
                        Err(e) => {
                            refused.fetch_add(1, Ordering::Relaxed);
                            // The refusal itself must be internally
                            // consistent, not just present.
                            assert!(e.wanted > e.free);
                        }
                    }
                    // Invariant probe under contention: free counts can
                    // never exceed capacity (conservation's upper face;
                    // the lower face — never negative — is typed away
                    // by usize and checked by debug asserts inside).
                    for (f, c) in inv.free_nodes().iter().zip(&capacities) {
                        assert!(f <= c, "free {f} exceeds capacity {c}");
                    }
                    if round % 5 == 4 {
                        for lease in held.drain(..) {
                            inv.release(lease).expect("held lease releases");
                        }
                    }
                }
                for lease in held {
                    inv.release(lease).expect("held lease releases");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread");
    }

    assert!(granted.load(Ordering::Relaxed) > 0, "stress never granted");
    assert!(refused.load(Ordering::Relaxed) > 0, "stress never refused");
    // Everything explicit was released and every TTL lease is long
    // expired: the ledger must balance back to full capacity.
    std::thread::sleep(Duration::from_millis(5));
    assert_eq!(inv.free_nodes(), capacities);
    assert_eq!(inv.active_leases(), 0);
}

#[test]
fn same_seed_requests_are_bit_identical_across_worker_interleavings() {
    const THREADS: usize = 8;
    let svc = Arc::new(MappingService::new(
        presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42),
        ServiceConfig::default(),
    ));
    let csv = AppKind::parse("sp")
        .unwrap()
        .workload(16)
        .pattern()
        .to_csv();

    // All threads solve the same problem with the same seed, with the
    // result cache OFF so every thread really runs the optimizer; the
    // problem cache stays on, so threads race to fill it too.
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let csv = csv.clone();
            std::thread::spawn(move || {
                let req = MapRequest {
                    use_result_cache: false,
                    ..MapRequest::new(format!("t{t}"), csv)
                };
                match svc.handle(&Request::Map(req)) {
                    Response::Map(m) => (m.mapping, m.cost.to_bits()),
                    other => panic!("map failed: {other:?}"),
                }
            })
        })
        .collect();

    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results[1..] {
        assert_eq!(r.0, results[0].0, "mapping differs across interleavings");
        assert_eq!(r.1, results[0].1, "cost bits differ across interleavings");
    }
}
