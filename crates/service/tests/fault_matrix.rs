//! Chaos suite: every injectable fault kind crossed with every request
//! kind, driven through the retrying client over an in-process
//! loopback — no sockets, no sleeps, no wall clock.
//!
//! The contract under test: whatever the fault, the caller gets either
//! the correct response or a *typed* retryable error — never a hang,
//! never a duplicated lease. After every scenario the inventory must
//! balance exactly (`free[j] + Σ leases[j] == capacity[j]`), checked in
//! release builds through [`ClusterInventory::leased_counts`].
//!
//! The seeded retry-storm replays the same fault schedule twice on two
//! fresh services and requires the full client-outcome sequence — the
//! injected-fault trace and the virtual clock included — to be
//! bit-identical. `CHAOS_SEED=n` reruns the storm on another schedule
//! (CI's chaos-smoke job pins two).

use commgraph::apps::AppKind;
use geomap_service::proto::{ErrorCode, Response};
use geomap_service::transport::{Fault, FaultPlan, FaultyConnector, LoopbackConnector};
use geomap_service::{
    ClientError, MapRequest, MappingService, RetryPolicy, RetryingClient, ServiceConfig,
};
use geonet::{presets, InstanceType, SiteNetwork};
use std::sync::Arc;
use std::time::Duration;

fn network() -> SiteNetwork {
    presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42)
}

fn pattern_csv(ranks: usize) -> String {
    AppKind::parse("sp")
        .expect("sp is a known app")
        .workload(ranks)
        .pattern()
        .to_csv()
}

fn service() -> Arc<MappingService> {
    Arc::new(MappingService::new(network(), ServiceConfig::default()))
}

/// A retrying client whose every attempt draws from `plan`; injected
/// latency above one (virtual) second loses the response.
fn chaos_client(
    svc: &Arc<MappingService>,
    plan: &Arc<FaultPlan>,
    policy: RetryPolicy,
) -> RetryingClient<FaultyConnector<LoopbackConnector>> {
    let connector = FaultyConnector::new(LoopbackConnector::new(Arc::clone(svc)), Arc::clone(plan))
        .with_attempt_budget(Duration::from_secs(1));
    RetryingClient::new(connector, policy)
}

fn reserve_request(id: &str) -> MapRequest {
    MapRequest {
        ranks: Some(4),
        reserve: true,
        ..MapRequest::new(id, pattern_csv(4))
    }
}

fn plain_request(id: &str) -> MapRequest {
    MapRequest {
        ranks: Some(4),
        ..MapRequest::new(id, pattern_csv(4))
    }
}

/// The conservation invariant, on release-build accessors: every node
/// is either free or held by exactly one live lease.
fn assert_conserved(svc: &MappingService, context: &str) {
    let caps = svc.inventory().capacities();
    let free = svc.inventory().free_nodes();
    let leased = svc.inventory().leased_counts();
    for j in 0..caps.len() {
        assert_eq!(
            free[j] + leased[j],
            caps[j],
            "conservation broken at site {j} after {context}: \
             free {} + leased {} != capacity {}",
            free[j],
            leased[j],
            caps[j]
        );
    }
}

/// Every fault kind the plan can schedule, including latency both
/// within and beyond the attempt budget.
const FAULTS: &[Fault] = &[
    Fault::None,
    Fault::ConnectRefused,
    Fault::WriteTimeout,
    Fault::PartialWrite,
    Fault::ReadTimeout,
    Fault::GarbledResponse,
    Fault::DisconnectMidResponse,
    Fault::Latency(50),
    Fault::Latency(5_000),
];

#[test]
fn every_fault_resolves_every_request_kind_without_hang_or_leak() {
    let svc = service();
    let caps = svc.inventory().capacities();
    for (i, &fault) in FAULTS.iter().enumerate() {
        let label = fault.label();
        // One service is shared across the matrix, so every scenario's
        // client needs its own policy seed: the seed tags the client's
        // auto idempotency keys, and reusing a tag across clients would
        // (correctly) replay another scenario's response.
        let policy = |k: u64| RetryPolicy {
            seed: 0xFA_0000 + (i as u64) * 8 + k,
            ..RetryPolicy::default()
        };

        // --- plain map: one injected fault, retries recover ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client(&svc, &plan, policy(0));
        match client.map(plain_request(&format!("plain-{label}"))) {
            Ok(Response::Map(m)) => assert!(m.lease.is_none()),
            other => panic!("plain map under {label}: {other:?}"),
        }
        assert_conserved(&svc, &format!("plain map under {label}"));

        // --- reserving map: exactly one lease, however the fault lands ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client(&svc, &plan, policy(1));
        let leases_before = svc.inventory().active_leases();
        let lease = match client.map(reserve_request(&format!("reserve-{label}"))) {
            Ok(Response::Map(m)) => m.lease.expect("reservation grants a lease"),
            other => panic!("reserving map under {label}: {other:?}"),
        };
        assert_eq!(
            svc.inventory().active_leases(),
            leases_before + 1,
            "fault {label} duplicated or dropped a lease"
        );
        assert_conserved(&svc, &format!("reserving map under {label}"));

        // --- release: freed exactly once; a re-executed release after a
        // lost response is a clean unknown_lease, never a double-free ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client(&svc, &plan, policy(2));
        match client.release(&format!("release-{label}"), lease) {
            Ok(Response::Release { .. }) => {}
            Ok(Response::Error(e)) => assert_eq!(
                e.code,
                ErrorCode::UnknownLease,
                "release under {label}: {e:?}"
            ),
            other => panic!("release under {label}: {other:?}"),
        }
        assert_eq!(svc.inventory().free_nodes(), caps, "nodes lost by {label}");
        assert_conserved(&svc, &format!("release under {label}"));

        // --- stats: read-only, always retry-safe ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client(&svc, &plan, policy(3));
        match client.stats(&format!("stats-{label}")) {
            Ok(Response::Stats(_)) => {}
            other => panic!("stats under {label}: {other:?}"),
        }
        assert_conserved(&svc, &format!("stats under {label}"));
    }
}

#[test]
fn lost_response_on_reserving_map_replays_the_same_lease() {
    // The classic double-reservation window: the server reserved, the
    // response died on the wire. The auto idempotency key must make the
    // retry replay the stored response — same lease id, one lease held.
    for fault in [
        Fault::ReadTimeout,
        Fault::DisconnectMidResponse,
        Fault::GarbledResponse,
        Fault::Latency(5_000),
    ] {
        let svc = service();
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client(&svc, &plan, RetryPolicy::default());
        let resp = client.map(reserve_request("idem"));
        let Ok(Response::Map(m)) = resp else {
            panic!("reserve under {}: {resp:?}", fault.label());
        };
        assert!(m.lease.is_some());
        assert_eq!(
            svc.inventory().active_leases(),
            1,
            "{} caused a duplicate reservation",
            fault.label()
        );
        let stats = svc.stats("after");
        assert_eq!(
            stats.replays,
            1,
            "{} should have been answered from the idempotency cache",
            fault.label()
        );
        assert_eq!(stats.served, 1, "the solve must have run exactly once");
        assert_conserved(&svc, fault.label());
        assert_eq!(plan.injected(), vec![fault.label()]);
    }
}

#[test]
fn exhausted_retry_budget_is_a_typed_retryable_error() {
    let svc = service();
    let plan = FaultPlan::script([Fault::ConnectRefused; 4]);
    let mut client = chaos_client(&svc, &plan, RetryPolicy::default());
    match client.map(plain_request("doomed")) {
        Err(ClientError::Retryable {
            attempts,
            last_error,
        }) => {
            assert_eq!(attempts, 4);
            assert!(last_error.contains("refused"), "{last_error}");
        }
        other => panic!("expected a typed retryable error, got {other:?}"),
    }
    // Nothing ever reached the service.
    assert_eq!(svc.stats("s").served, 0);
    assert_conserved(&svc, "exhausted budget");
}

/// An ambiguous failure on a reserving, keyless `send` is Fatal even
/// when the budget is spent: calling it `Retryable` would invite the
/// blind manual retry — and double reservation — the classification
/// exists to stop. The server *did* process the request.
#[test]
fn keyless_reserving_send_is_fatal_even_on_the_final_attempt() {
    use geomap_service::Request;

    let svc = service();
    let plan = FaultPlan::script([Fault::ReadTimeout]);
    let mut client = chaos_client(
        &svc,
        &plan,
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
    );
    match client.send(&Request::Map(reserve_request("no-key"))) {
        Err(ClientError::Fatal(m)) => assert!(m.contains("idempotency"), "{m}"),
        other => panic!("expected fatal, got {other:?}"),
    }
    // The lease exists server-side — exactly why a blind retry is unsafe.
    assert_eq!(svc.inventory().active_leases(), 1);
    assert_conserved(&svc, "final-attempt ambiguity");
}

/// `map()` auto-keys a reserving request even at `max_attempts == 1`,
/// so the same lost response is merely Retryable: the key makes the
/// caller's own later retry safe (it would replay, not re-reserve).
#[test]
fn single_attempt_map_still_gets_an_auto_idempotency_key() {
    let svc = service();
    let plan = FaultPlan::script([Fault::ReadTimeout]);
    let mut client = chaos_client(
        &svc,
        &plan,
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
    );
    match client.map(reserve_request("one-shot")) {
        Err(ClientError::Retryable { attempts, .. }) => assert_eq!(attempts, 1),
        other => panic!("expected retryable exhaustion, got {other:?}"),
    }
    assert_conserved(&svc, "single-attempt keyed map");
}

#[test]
fn non_retryable_refusals_are_returned_not_retried() {
    let svc = service();
    svc.begin_shutdown();
    let plan = FaultPlan::script([]);
    let mut client = chaos_client(&svc, &plan, RetryPolicy::default());
    match client.map(plain_request("late")) {
        Ok(Response::Error(e)) => assert_eq!(e.code, ErrorCode::ShuttingDown),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    // One rejection recorded: the client did not burn retries on a
    // refusal that retrying cannot fix.
    assert_eq!(svc.stats("s").rejected, 1);
}

// ------------------------------------------------------------- storm

/// A deterministic, wall-clock-free signature of one client outcome.
/// Timing fields (`solve_s`, `queue_wait_s`) are real elapsed seconds
/// and are deliberately excluded.
fn signature(outcome: &Result<Response, ClientError>) -> String {
    match outcome {
        Ok(Response::Map(m)) => format!(
            "map id={} sites={:?} cost={:016x} tier={} lease={:?} degraded={} stale={}",
            m.id,
            m.mapping,
            m.cost.to_bits(),
            m.cached.label(),
            m.lease,
            m.degraded,
            m.staleness
        ),
        Ok(Response::Release {
            id,
            freed,
            free_nodes,
        }) => format!("release id={id} freed={freed:?} free={free_nodes:?}"),
        Ok(Response::Stats(s)) => format!(
            "stats served={} replays={} rejected={} leases={} free={:?}",
            s.served, s.replays, s.rejected, s.active_leases, s.free_nodes
        ),
        Ok(Response::Shutdown { id, draining }) => format!("shutdown id={id} draining={draining}"),
        Ok(Response::Error(e)) => format!(
            "error id={} code={} msg={}",
            e.id,
            e.code.label(),
            e.message
        ),
        Err(e) => format!("client-error {e}"),
    }
}

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC4A05)
}

/// One full storm: a fixed request mix through a seeded fault schedule
/// against a fresh service. Returns every observable the run produced.
fn run_storm(seed: u64) -> (Vec<String>, Vec<&'static str>, u64) {
    let svc = service();
    let plan = FaultPlan::seeded(seed, 64, 0.6);
    let policy = RetryPolicy {
        max_attempts: 3,
        seed: seed ^ 0xFEED,
        ..RetryPolicy::default()
    };
    let mut client = chaos_client(&svc, &plan, policy);
    let mut outcomes = Vec::new();
    let mut lease: Option<u64> = None;
    for round in 0..16u32 {
        let outcome = match round % 4 {
            0 => {
                let r = client.map(reserve_request(&format!("storm-{round}")));
                if let Ok(Response::Map(m)) = &r {
                    lease = m.lease;
                }
                r
            }
            1 => client.map(plain_request(&format!("storm-{round}"))),
            2 => client.stats("storm"),
            // Round 3 releases whatever round 0 managed to reserve; a
            // dangling id degrades to a clean unknown_lease.
            _ => client.release("storm", lease.take().unwrap_or(u64::MAX)),
        };
        outcomes.push(signature(&outcome));
        assert_conserved(&svc, &format!("storm round {round}"));
    }
    (outcomes, plan.injected(), plan.virtual_elapsed_ms())
}

#[test]
fn same_seed_yields_bit_identical_outcome_sequences() {
    let seed = chaos_seed();
    let (outcomes_a, injected_a, clock_a) = run_storm(seed);
    let (outcomes_b, injected_b, clock_b) = run_storm(seed);
    assert_eq!(
        injected_a, injected_b,
        "fault schedules diverged for seed {seed:#x}"
    );
    assert_eq!(
        clock_a, clock_b,
        "virtual clocks diverged for seed {seed:#x}"
    );
    assert_eq!(
        outcomes_a.len(),
        outcomes_b.len(),
        "outcome counts diverged for seed {seed:#x}"
    );
    for (i, (a, b)) in outcomes_a.iter().zip(&outcomes_b).enumerate() {
        assert_eq!(a, b, "outcome {i} diverged for seed {seed:#x}");
    }
}

#[test]
fn different_seeds_change_the_fault_schedule() {
    // Not a tautology: it pins that the seed actually reaches the
    // schedule (a plan ignoring its seed would pass the identity test).
    let a = FaultPlan::seeded(1, 64, 0.6);
    let b = FaultPlan::seeded(2, 64, 0.6);
    let svc = service();
    for plan in [&a, &b] {
        let mut client = chaos_client(&svc, plan, RetryPolicy::default());
        let _ = client.stats("probe");
        let _ = client.stats("probe");
        let _ = client.stats("probe");
    }
    assert_ne!(
        a.injected(),
        b.injected(),
        "seeds 1 and 2 produced identical injected-fault traces"
    );
}
