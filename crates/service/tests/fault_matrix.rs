//! Chaos suite: every injectable fault kind crossed with every request
//! kind, driven through the retrying client over an in-process
//! loopback — no sockets, no sleeps, no wall clock.
//!
//! The contract under test: whatever the fault, the caller gets either
//! the correct response or a *typed* retryable error — never a hang,
//! never a duplicated lease. After every scenario the inventory must
//! balance exactly (`free[j] + Σ leases[j] == capacity[j]`), checked in
//! release builds through [`ClusterInventory::leased_counts`].
//!
//! The seeded retry-storm replays the same fault schedule twice on two
//! fresh services and requires the full client-outcome sequence — the
//! injected-fault trace and the virtual clock included — to be
//! bit-identical. `CHAOS_SEED=n` reruns the storm on another schedule
//! (CI's chaos-smoke job pins two).

use commgraph::apps::AppKind;
use geomap_service::frame::{self, Frame, FRAME_HEADER_BYTES, FRAME_MAGIC, FRAME_VERSION};
use geomap_service::proto::{ErrorCode, Request, Response};
use geomap_service::transport::{Fault, FaultPlan, FaultyConnector, LoopbackConnector};
use geomap_service::wire::WireFormat;
use geomap_service::{
    ClientError, MapRequest, MappingServer, MappingService, PooledClient, RetryPolicy,
    RetryingClient, ServiceClient, ServiceConfig,
};
use geonet::{presets, InstanceType, SiteNetwork};
use std::sync::Arc;
use std::time::Duration;

fn network() -> SiteNetwork {
    presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42)
}

fn pattern_csv(ranks: usize) -> String {
    AppKind::parse("sp")
        .expect("sp is a known app")
        .workload(ranks)
        .pattern()
        .to_csv()
}

fn service() -> Arc<MappingService> {
    Arc::new(MappingService::new(network(), ServiceConfig::default()))
}

/// A retrying client whose every attempt draws from `plan`; injected
/// latency above one (virtual) second loses the response. Chaos is
/// injected below the wire format, so the same plan drives both
/// protocols: byte faults hit a JSON line or a binary frame alike.
fn chaos_client_with(
    svc: &Arc<MappingService>,
    plan: &Arc<FaultPlan>,
    policy: RetryPolicy,
    format: WireFormat,
) -> RetryingClient<FaultyConnector<LoopbackConnector>> {
    let connector = FaultyConnector::new(
        LoopbackConnector::new(Arc::clone(svc)).with_format(format),
        Arc::clone(plan),
    )
    .with_attempt_budget(Duration::from_secs(1));
    RetryingClient::new(connector, policy)
}

fn chaos_client(
    svc: &Arc<MappingService>,
    plan: &Arc<FaultPlan>,
    policy: RetryPolicy,
) -> RetryingClient<FaultyConnector<LoopbackConnector>> {
    chaos_client_with(svc, plan, policy, WireFormat::V1Json)
}

fn reserve_request(id: &str) -> MapRequest {
    MapRequest {
        ranks: Some(4),
        reserve: true,
        ..MapRequest::new(id, pattern_csv(4))
    }
}

fn plain_request(id: &str) -> MapRequest {
    MapRequest {
        ranks: Some(4),
        ..MapRequest::new(id, pattern_csv(4))
    }
}

/// The conservation invariant, on release-build accessors: every node
/// is either free or held by exactly one live lease.
fn assert_conserved(svc: &MappingService, context: &str) {
    let caps = svc.inventory().capacities();
    let free = svc.inventory().free_nodes();
    let leased = svc.inventory().leased_counts();
    for j in 0..caps.len() {
        assert_eq!(
            free[j] + leased[j],
            caps[j],
            "conservation broken at site {j} after {context}: \
             free {} + leased {} != capacity {}",
            free[j],
            leased[j],
            caps[j]
        );
    }
}

/// Every fault kind the plan can schedule, including latency both
/// within and beyond the attempt budget.
const FAULTS: &[Fault] = &[
    Fault::None,
    Fault::ConnectRefused,
    Fault::WriteTimeout,
    Fault::PartialWrite,
    Fault::ReadTimeout,
    Fault::GarbledResponse,
    Fault::DisconnectMidResponse,
    Fault::Latency(50),
    Fault::Latency(5_000),
];

/// The full matrix body, shared by the per-format tests below: each
/// run gets a fresh service, so the per-scenario key seeds can repeat
/// across formats without replay collisions.
fn fault_matrix_over(format: WireFormat) {
    let svc = service();
    let caps = svc.inventory().capacities();
    for (i, &fault) in FAULTS.iter().enumerate() {
        let label = fault.label();
        // One service is shared across the matrix, so every scenario's
        // client needs its own policy seed: the seed tags the client's
        // auto idempotency keys, and reusing a tag across clients would
        // (correctly) replay another scenario's response.
        let policy = |k: u64| RetryPolicy {
            seed: 0xFA_0000 + (i as u64) * 8 + k,
            ..RetryPolicy::default()
        };

        // --- plain map: one injected fault, retries recover ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client_with(&svc, &plan, policy(0), format);
        match client.map(plain_request(&format!("plain-{label}"))) {
            Ok(Response::Map(m)) => assert!(m.lease.is_none()),
            other => panic!("plain map under {label}: {other:?}"),
        }
        assert_conserved(&svc, &format!("plain map under {label}"));

        // --- reserving map: exactly one lease, however the fault lands ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client_with(&svc, &plan, policy(1), format);
        let leases_before = svc.inventory().active_leases();
        let lease = match client.map(reserve_request(&format!("reserve-{label}"))) {
            Ok(Response::Map(m)) => m.lease.expect("reservation grants a lease"),
            other => panic!("reserving map under {label}: {other:?}"),
        };
        assert_eq!(
            svc.inventory().active_leases(),
            leases_before + 1,
            "fault {label} duplicated or dropped a lease"
        );
        assert_conserved(&svc, &format!("reserving map under {label}"));

        // --- release: freed exactly once; a re-executed release after a
        // lost response is a clean unknown_lease, never a double-free ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client_with(&svc, &plan, policy(2), format);
        match client.release(&format!("release-{label}"), lease) {
            Ok(Response::Release { .. }) => {}
            Ok(Response::Error(e)) => assert_eq!(
                e.code,
                ErrorCode::UnknownLease,
                "release under {label}: {e:?}"
            ),
            other => panic!("release under {label}: {other:?}"),
        }
        assert_eq!(svc.inventory().free_nodes(), caps, "nodes lost by {label}");
        assert_conserved(&svc, &format!("release under {label}"));

        // --- stats: read-only, always retry-safe ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client_with(&svc, &plan, policy(3), format);
        match client.stats(&format!("stats-{label}")) {
            Ok(Response::Stats(_)) => {}
            other => panic!("stats under {label}: {other:?}"),
        }
        assert_conserved(&svc, &format!("stats under {label}"));
    }
}

#[test]
fn every_fault_resolves_every_request_kind_without_hang_or_leak() {
    fault_matrix_over(WireFormat::V1Json);
}

/// The identical matrix over binary frames: the chaos layer operates
/// on raw bytes, so mid-frame disconnects, partial writes (splitting
/// the length prefix), and garbled frames all land on the v2 decoder.
#[test]
fn every_fault_resolves_every_request_kind_over_v2_frames() {
    fault_matrix_over(WireFormat::V2Binary);
}

#[test]
fn lost_response_on_reserving_map_replays_the_same_lease() {
    // The classic double-reservation window: the server reserved, the
    // response died on the wire. The auto idempotency key must make the
    // retry replay the stored response — same lease id, one lease held.
    for fault in [
        Fault::ReadTimeout,
        Fault::DisconnectMidResponse,
        Fault::GarbledResponse,
        Fault::Latency(5_000),
    ] {
        let svc = service();
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client(&svc, &plan, RetryPolicy::default());
        let resp = client.map(reserve_request("idem"));
        let Ok(Response::Map(m)) = resp else {
            panic!("reserve under {}: {resp:?}", fault.label());
        };
        assert!(m.lease.is_some());
        assert_eq!(
            svc.inventory().active_leases(),
            1,
            "{} caused a duplicate reservation",
            fault.label()
        );
        let stats = svc.stats("after");
        assert_eq!(
            stats.replays,
            1,
            "{} should have been answered from the idempotency cache",
            fault.label()
        );
        assert_eq!(stats.served, 1, "the solve must have run exactly once");
        assert_conserved(&svc, fault.label());
        assert_eq!(plan.injected(), vec![fault.label()]);
    }
}

#[test]
fn exhausted_retry_budget_is_a_typed_retryable_error() {
    let svc = service();
    let plan = FaultPlan::script([Fault::ConnectRefused; 4]);
    let mut client = chaos_client(&svc, &plan, RetryPolicy::default());
    match client.map(plain_request("doomed")) {
        Err(ClientError::Retryable {
            attempts,
            last_error,
        }) => {
            assert_eq!(attempts, 4);
            assert!(last_error.contains("refused"), "{last_error}");
        }
        other => panic!("expected a typed retryable error, got {other:?}"),
    }
    // Nothing ever reached the service.
    assert_eq!(svc.stats("s").served, 0);
    assert_conserved(&svc, "exhausted budget");
}

/// An ambiguous failure on a reserving, keyless `send` is Fatal even
/// when the budget is spent: calling it `Retryable` would invite the
/// blind manual retry — and double reservation — the classification
/// exists to stop. The server *did* process the request.
#[test]
fn keyless_reserving_send_is_fatal_even_on_the_final_attempt() {
    use geomap_service::Request;

    let svc = service();
    let plan = FaultPlan::script([Fault::ReadTimeout]);
    let mut client = chaos_client(
        &svc,
        &plan,
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
    );
    match client.send(&Request::Map(reserve_request("no-key"))) {
        Err(ClientError::Fatal(m)) => assert!(m.contains("idempotency"), "{m}"),
        other => panic!("expected fatal, got {other:?}"),
    }
    // The lease exists server-side — exactly why a blind retry is unsafe.
    assert_eq!(svc.inventory().active_leases(), 1);
    assert_conserved(&svc, "final-attempt ambiguity");
}

/// `map()` auto-keys a reserving request even at `max_attempts == 1`,
/// so the same lost response is merely Retryable: the key makes the
/// caller's own later retry safe (it would replay, not re-reserve).
#[test]
fn single_attempt_map_still_gets_an_auto_idempotency_key() {
    let svc = service();
    let plan = FaultPlan::script([Fault::ReadTimeout]);
    let mut client = chaos_client(
        &svc,
        &plan,
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
    );
    match client.map(reserve_request("one-shot")) {
        Err(ClientError::Retryable { attempts, .. }) => assert_eq!(attempts, 1),
        other => panic!("expected retryable exhaustion, got {other:?}"),
    }
    assert_conserved(&svc, "single-attempt keyed map");
}

#[test]
fn non_retryable_refusals_are_returned_not_retried() {
    let svc = service();
    svc.begin_shutdown();
    let plan = FaultPlan::script([]);
    let mut client = chaos_client(&svc, &plan, RetryPolicy::default());
    match client.map(plain_request("late")) {
        Ok(Response::Error(e)) => assert_eq!(e.code, ErrorCode::ShuttingDown),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    // One rejection recorded: the client did not burn retries on a
    // refusal that retrying cannot fix.
    assert_eq!(svc.stats("s").rejected, 1);
}

// ------------------------------------------------------------- storm

/// A deterministic, wall-clock-free signature of one client outcome.
/// Timing fields (`solve_s`, `queue_wait_s`) are real elapsed seconds
/// and are deliberately excluded.
fn signature(outcome: &Result<Response, ClientError>) -> String {
    match outcome {
        Ok(Response::Map(m)) => format!(
            "map id={} sites={:?} cost={:016x} tier={} lease={:?} degraded={} stale={}",
            m.id,
            m.mapping,
            m.cost.to_bits(),
            m.cached.label(),
            m.lease,
            m.degraded,
            m.staleness
        ),
        Ok(Response::Release {
            id,
            freed,
            free_nodes,
        }) => format!("release id={id} freed={freed:?} free={free_nodes:?}"),
        Ok(Response::Stats(s)) => format!(
            "stats served={} replays={} rejected={} leases={} free={:?}",
            s.served, s.replays, s.rejected, s.active_leases, s.free_nodes
        ),
        Ok(Response::Shutdown { id, draining }) => format!("shutdown id={id} draining={draining}"),
        Ok(Response::Error(e)) => format!(
            "error id={} code={} msg={}",
            e.id,
            e.code.label(),
            e.message
        ),
        Err(e) => format!("client-error {e}"),
    }
}

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC4A05)
}

/// One full storm: a fixed request mix through a seeded fault schedule
/// against a fresh service. Returns every observable the run produced.
fn run_storm(seed: u64, format: WireFormat) -> (Vec<String>, Vec<&'static str>, u64) {
    let svc = service();
    let plan = FaultPlan::seeded(seed, 64, 0.6);
    let policy = RetryPolicy {
        max_attempts: 3,
        seed: seed ^ 0xFEED,
        ..RetryPolicy::default()
    };
    let mut client = chaos_client_with(&svc, &plan, policy, format);
    let mut outcomes = Vec::new();
    let mut lease: Option<u64> = None;
    for round in 0..16u32 {
        let outcome = match round % 4 {
            0 => {
                let r = client.map(reserve_request(&format!("storm-{round}")));
                if let Ok(Response::Map(m)) = &r {
                    lease = m.lease;
                }
                r
            }
            1 => client.map(plain_request(&format!("storm-{round}"))),
            2 => client.stats("storm"),
            // Round 3 releases whatever round 0 managed to reserve; a
            // dangling id degrades to a clean unknown_lease.
            _ => client.release("storm", lease.take().unwrap_or(u64::MAX)),
        };
        outcomes.push(signature(&outcome));
        assert_conserved(&svc, &format!("storm round {round}"));
    }
    (outcomes, plan.injected(), plan.virtual_elapsed_ms())
}

#[test]
fn same_seed_yields_bit_identical_outcome_sequences() {
    let seed = chaos_seed();
    for format in [WireFormat::V1Json, WireFormat::V2Binary] {
        let (outcomes_a, injected_a, clock_a) = run_storm(seed, format);
        let (outcomes_b, injected_b, clock_b) = run_storm(seed, format);
        let label = format.label();
        assert_eq!(
            injected_a, injected_b,
            "fault schedules diverged for seed {seed:#x} over {label}"
        );
        assert_eq!(
            clock_a, clock_b,
            "virtual clocks diverged for seed {seed:#x} over {label}"
        );
        assert_eq!(
            outcomes_a.len(),
            outcomes_b.len(),
            "outcome counts diverged for seed {seed:#x} over {label}"
        );
        for (i, (a, b)) in outcomes_a.iter().zip(&outcomes_b).enumerate() {
            assert_eq!(a, b, "outcome {i} diverged for seed {seed:#x} over {label}");
        }
    }
}

/// The storm is also *format*-independent: the same fault schedule on
/// the same seed must yield the same outcomes, injected-fault trace,
/// and virtual clock whether the bytes on the wire were JSON lines or
/// binary frames. Any divergence means a fault class one decoder
/// survives differently from the other. The one legitimate difference
/// is the decoder's own description of mangled bytes ("malformed
/// response JSON" vs "truncated frame"), which [`decoder_agnostic`]
/// cuts before comparing.
fn decoder_agnostic(sig: &str) -> String {
    match sig.find("garbled response:") {
        Some(cut) => format!("{}garbled response", &sig[..cut]),
        None => sig.to_string(),
    }
}

#[test]
fn same_seed_storms_agree_across_wire_formats() {
    let seed = chaos_seed();
    let v1 = run_storm(seed, WireFormat::V1Json);
    let v2 = run_storm(seed, WireFormat::V2Binary);
    assert_eq!(
        v1.1, v2.1,
        "injected-fault traces diverged for seed {seed:#x}"
    );
    assert_eq!(v1.2, v2.2, "virtual clocks diverged for seed {seed:#x}");
    for (i, (a, b)) in v1.0.iter().zip(&v2.0).enumerate() {
        assert_eq!(
            decoder_agnostic(a),
            decoder_agnostic(b),
            "outcome {i} diverged between formats for seed {seed:#x}"
        );
    }
}

#[test]
fn different_seeds_change_the_fault_schedule() {
    // Not a tautology: it pins that the seed actually reaches the
    // schedule (a plan ignoring its seed would pass the identity test).
    let a = FaultPlan::seeded(1, 64, 0.6);
    let b = FaultPlan::seeded(2, 64, 0.6);
    let svc = service();
    for plan in [&a, &b] {
        let mut client = chaos_client(&svc, plan, RetryPolicy::default());
        let _ = client.stats("probe");
        let _ = client.stats("probe");
        let _ = client.stats("probe");
    }
    assert_ne!(
        a.injected(),
        b.injected(),
        "seeds 1 and 2 produced identical injected-fault traces"
    );
}

// ------------------------------------------------- raw-socket chaos

// The loopback chaos above exercises fault *semantics*; these
// scenarios aim the same fault shapes at the real reactor: torn
// frames on live sockets, writes split inside the length prefix,
// garbage inside structurally valid frames, and hostile headers.

fn bind_server() -> MappingServer {
    MappingServer::bind(
        MappingService::new(network(), ServiceConfig::default()),
        "127.0.0.1:0",
    )
    .expect("bind loopback")
}

/// Read one whole response frame off a raw socket and decode it.
fn read_response_frame(stream: &mut std::net::TcpStream) -> (u64, Response) {
    use std::io::Read;
    let mut header = [0u8; FRAME_HEADER_BYTES];
    stream.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes(header[11..15].try_into().unwrap()) as usize;
    let mut whole = header.to_vec();
    whole.resize(FRAME_HEADER_BYTES + len, 0);
    stream
        .read_exact(&mut whole[FRAME_HEADER_BYTES..])
        .expect("frame payload");
    WireFormat::decode_response(&whole).expect("decode response frame")
}

#[test]
fn mid_frame_disconnect_leaves_the_server_serving() {
    use std::io::Write;

    let server = bind_server();
    let addr = server.local_addr().to_string();
    let timeout = Some(Duration::from_secs(30));

    // A client dies after writing half a frame (header plus a partial
    // payload): the reactor must simply drop the connection.
    let wire = frame::encode_request(&Request::Map(reserve_request("torn")), 5);
    {
        let mut torn = std::net::TcpStream::connect(&addr).expect("connect");
        torn.write_all(&wire[..wire.len() / 2]).expect("half write");
        torn.flush().expect("flush");
    } // dropped here, mid-frame

    // The server keeps answering, and since the torn request never
    // completed, no lease was ever created for it.
    let mut client =
        ServiceClient::connect_with(&addr, timeout, WireFormat::V2Binary).expect("connect");
    match client
        .map(plain_request("after-torn"))
        .expect("map after torn frame")
    {
        Response::Map(m) => assert!(m.lease.is_none()),
        other => panic!("map after torn frame: {other:?}"),
    }
    assert_eq!(server.service().inventory().active_leases(), 0);
    assert_conserved(server.service(), "mid-frame disconnect");
    client.shutdown("bye").expect("shutdown");
    server.join();
}

#[test]
fn writes_split_inside_the_length_prefix_still_decode() {
    use std::io::Write;

    let server = bind_server();
    let addr = server.local_addr().to_string();
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).ok();

    // Deliver one stats frame in three writes with pauses between:
    // magic alone, then up to the middle of the length prefix, then
    // the rest. The reactor must treat every prefix as Pending.
    let wire = frame::encode_request(&Request::Stats { id: "split".into() }, 77);
    for chunk in [&wire[..1], &wire[1..13], &wire[13..]] {
        stream.write_all(chunk).expect("chunk write");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(30));
    }
    let (corr, response) = read_response_frame(&mut stream);
    assert_eq!(corr, 77, "correlation id lost across split writes");
    assert!(matches!(response, Response::Stats(_)), "{response:?}");

    drop(stream);
    let mut client =
        ServiceClient::connect_with(&addr, Some(Duration::from_secs(30)), WireFormat::V2Binary)
            .expect("connect");
    client.shutdown("bye").expect("shutdown");
    server.join();
}

#[test]
fn garbage_inside_a_valid_frame_is_an_error_and_the_connection_survives() {
    use std::io::Write;

    let server = bind_server();
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");

    // Structurally valid frame, nonsense payload: the reject must echo
    // the correlation id and keep the connection usable.
    let junk = Frame {
        kind: frame::FrameKind::Request,
        corr_id: 42,
        payload: vec![0xFF; 33],
    };
    stream.write_all(&junk.encode()).expect("junk write");
    let (corr, response) = read_response_frame(&mut stream);
    assert_eq!(corr, 42, "reject must echo the offending frame's corr id");
    match response {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest, "{e:?}"),
        other => panic!("expected bad_request, got {other:?}"),
    }

    // Same connection, now a well-formed request: still served.
    stream
        .write_all(&frame::encode_request(
            &Request::Stats { id: "ok".into() },
            43,
        ))
        .expect("stats write");
    let (corr, response) = read_response_frame(&mut stream);
    assert_eq!(corr, 43);
    assert!(matches!(response, Response::Stats(_)), "{response:?}");

    stream
        .write_all(&frame::encode_request(
            &Request::Shutdown { id: "bye".into() },
            44,
        ))
        .expect("shutdown write");
    let _ = read_response_frame(&mut stream);
    server.join();
}

#[test]
fn hostile_frame_headers_are_refused_and_the_connection_closed() {
    use std::io::{Read, Write};

    let server = bind_server();

    // (declared length u32::MAX, expected code), (bad version, code)
    let hostile: [(Vec<u8>, ErrorCode); 2] = [
        (
            {
                let mut h = vec![FRAME_MAGIC, FRAME_VERSION, 1];
                h.extend_from_slice(&9u64.to_le_bytes());
                h.extend_from_slice(&u32::MAX.to_le_bytes());
                h
            },
            ErrorCode::BadRequest,
        ),
        (
            {
                let mut h = vec![FRAME_MAGIC, 9, 1];
                h.extend_from_slice(&9u64.to_le_bytes());
                h.extend_from_slice(&0u32.to_le_bytes());
                h
            },
            ErrorCode::UnsupportedVersion,
        ),
    ];
    for (header, expected) in hostile {
        let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&header).expect("hostile write");
        let (_, response) = read_response_frame(&mut stream);
        match response {
            Response::Error(e) => assert_eq!(e.code, expected, "{e:?}"),
            other => panic!("expected {}, got {other:?}", expected.label()),
        }
        // A broken frame is fatal for the connection: EOF follows.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("read to eof");
        assert!(rest.is_empty(), "server kept talking after a broken frame");
    }
    assert_conserved(server.service(), "hostile headers");

    let mut client = ServiceClient::connect_with(
        &server.local_addr().to_string(),
        Some(Duration::from_secs(30)),
        WireFormat::V2Binary,
    )
    .expect("connect");
    client.shutdown("bye").expect("shutdown");
    server.join();
}

/// The pipelined-pileup storm: many in-flight reserving requests per
/// socket across a pool, twice (the second run replays every keyed
/// response), then release everything. The ledger must balance after
/// every phase and every response must answer its own request.
#[test]
fn pipelined_pileup_conserves_the_ledger() {
    let server = bind_server();
    let addr = server.local_addr().to_string();
    let svc = Arc::clone(server.service());
    let caps = svc.inventory().capacities();
    let total: usize = caps.iter().sum();

    let batch: Vec<Request> = (0..12)
        .map(|i| {
            Request::Map(MapRequest {
                idempotency_key: Some(format!("pileup-{i}")),
                ..reserve_request(&format!("pileup-{i}"))
            })
        })
        .collect();

    let mut pool = PooledClient::new(&addr, 4, Some(Duration::from_secs(30)));
    let first = pool.pipeline(&batch).expect("first pileup");
    assert_conserved(&svc, "first pileup");
    let mut leases = Vec::new();
    for (i, response) in first.iter().enumerate() {
        match response {
            Response::Map(m) => {
                assert_eq!(
                    m.id,
                    format!("pileup-{i}"),
                    "response answered the wrong request"
                );
                leases.push(m.lease.expect("reserving map grants a lease"));
            }
            Response::Error(e) => assert_eq!(
                e.code,
                ErrorCode::InsufficientNodes,
                "unexpected pileup failure: {e:?}"
            ),
            other => panic!("pileup[{i}]: {other:?}"),
        }
    }
    assert_eq!(
        leases.len() * 4 + svc.inventory().free_nodes().iter().sum::<usize>(),
        total,
        "leases and free nodes disagree after the pileup"
    );

    // Replay: the same keyed batch must grant the *same* leases, not
    // new ones — even when the requests race down four sockets.
    let replayed = pool.pipeline(&batch).expect("replayed pileup");
    assert_conserved(&svc, "replayed pileup");
    for (a, b) in first.iter().zip(&replayed) {
        assert_eq!(a, b, "a pipelined replay diverged from the original");
    }
    assert_eq!(svc.inventory().active_leases(), leases.len());

    // Release every lease through the same pipelined path.
    let releases: Vec<Request> = leases
        .iter()
        .enumerate()
        .map(|(i, &lease)| Request::Release {
            id: format!("free-{i}"),
            lease,
        })
        .collect();
    for response in pool.pipeline(&releases).expect("pipelined releases") {
        assert!(matches!(response, Response::Release { .. }), "{response:?}");
    }
    assert_eq!(svc.inventory().active_leases(), 0);
    assert_eq!(svc.inventory().free_nodes(), caps);
    assert_conserved(&svc, "pipelined releases");

    let mut client =
        ServiceClient::connect_with(&addr, Some(Duration::from_secs(30)), WireFormat::V2Binary)
            .expect("connect");
    client.shutdown("bye").expect("shutdown");
    server.join();
}
