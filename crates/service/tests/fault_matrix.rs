//! Chaos suite: every injectable fault kind crossed with every request
//! kind, driven through the retrying client over an in-process
//! loopback — no sockets, no sleeps, no wall clock.
//!
//! The contract under test: whatever the fault, the caller gets either
//! the correct response or a *typed* retryable error — never a hang,
//! never a duplicated lease. After every scenario the inventory must
//! balance exactly (`free[j] + Σ leases[j] == capacity[j]`), checked in
//! release builds through the atomic `ClusterInventory::ledger`
//! snapshot.
//!
//! The seeded retry-storm replays the same fault schedule twice on two
//! fresh services and requires the full client-outcome sequence — the
//! injected-fault trace and the virtual clock included — to be
//! bit-identical. `CHAOS_SEED=n` reruns the storm on another schedule
//! (CI's chaos-smoke job pins two).
//!
//! The federation section aims the same machinery at a 3-shard fleet
//! behind a [`ShardRouter`]: a partitioned home shard whose lost
//! attempts leave an orphaned lease, a total blackout that must settle
//! to *zero* leases, and a seeded cross-shard storm that asserts the
//! global invariant `Σ_shards (free + leases) == Σ_shards capacity`
//! after every round.

use commgraph::apps::AppKind;
use geomap_service::federation::router::affinity_fingerprint;
use geomap_service::frame::{self, Frame, FRAME_HEADER_BYTES, FRAME_MAGIC, FRAME_VERSION};
use geomap_service::proto::{ErrorCode, Request, Response};
use geomap_service::transport::{Fault, FaultPlan, FaultyConnector, LoopbackConnector};
use geomap_service::wire::WireFormat;
use geomap_service::{
    ClientError, Clock, MapRequest, MappingServer, MappingService, PooledClient, RetryPolicy,
    RetryingClient, ServiceClient, ServiceConfig, ShardMap, ShardRouter, VirtualClock,
};
use geonet::{presets, InstanceType, SiteNetwork};
use std::sync::Arc;
use std::time::Duration;

fn network() -> SiteNetwork {
    presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42)
}

fn pattern_csv(ranks: usize) -> String {
    AppKind::parse("sp")
        .expect("sp is a known app")
        .workload(ranks)
        .pattern()
        .to_csv()
}

fn service() -> Arc<MappingService> {
    Arc::new(MappingService::new(network(), ServiceConfig::default()))
}

/// A retrying client whose every attempt draws from `plan`; injected
/// latency above one (virtual) second loses the response. Chaos is
/// injected below the wire format, so the same plan drives both
/// protocols: byte faults hit a JSON line or a binary frame alike.
fn chaos_client_with(
    svc: &Arc<MappingService>,
    plan: &Arc<FaultPlan>,
    policy: RetryPolicy,
    format: WireFormat,
) -> RetryingClient<FaultyConnector<LoopbackConnector>> {
    let connector = FaultyConnector::new(
        LoopbackConnector::new(Arc::clone(svc)).with_format(format),
        Arc::clone(plan),
    )
    .with_attempt_budget(Duration::from_secs(1));
    RetryingClient::new(connector, policy)
}

fn chaos_client(
    svc: &Arc<MappingService>,
    plan: &Arc<FaultPlan>,
    policy: RetryPolicy,
) -> RetryingClient<FaultyConnector<LoopbackConnector>> {
    chaos_client_with(svc, plan, policy, WireFormat::V1Json)
}

fn reserve_request(id: &str) -> MapRequest {
    MapRequest {
        ranks: Some(4),
        reserve: true,
        ..MapRequest::new(id, pattern_csv(4))
    }
}

fn plain_request(id: &str) -> MapRequest {
    MapRequest {
        ranks: Some(4),
        ..MapRequest::new(id, pattern_csv(4))
    }
}

/// The conservation invariant, on release-build accessors: every node
/// is either free or held by exactly one live lease. `ledger()` reads
/// free and leased under one lock so TTL expiry cannot slip between
/// the two sides of the sum.
fn assert_conserved(svc: &MappingService, context: &str) {
    let caps = svc.inventory().capacities();
    let (free, leased) = svc.inventory().ledger();
    for j in 0..caps.len() {
        assert_eq!(
            free[j] + leased[j],
            caps[j],
            "conservation broken at site {j} after {context}: \
             free {} + leased {} != capacity {}",
            free[j],
            leased[j],
            caps[j]
        );
    }
}

/// Every fault kind the plan can schedule, including latency both
/// within and beyond the attempt budget.
const FAULTS: &[Fault] = &[
    Fault::None,
    Fault::ConnectRefused,
    Fault::WriteTimeout,
    Fault::PartialWrite,
    Fault::ReadTimeout,
    Fault::GarbledResponse,
    Fault::DisconnectMidResponse,
    Fault::Latency(50),
    Fault::Latency(5_000),
];

/// The full matrix body, shared by the per-format tests below: each
/// run gets a fresh service, so the per-scenario key seeds can repeat
/// across formats without replay collisions.
fn fault_matrix_over(format: WireFormat) {
    let svc = service();
    let caps = svc.inventory().capacities();
    for (i, &fault) in FAULTS.iter().enumerate() {
        let label = fault.label();
        // One service is shared across the matrix, so every scenario's
        // client needs its own policy seed: the seed tags the client's
        // auto idempotency keys, and reusing a tag across clients would
        // (correctly) replay another scenario's response.
        let policy = |k: u64| RetryPolicy {
            seed: 0xFA_0000 + (i as u64) * 8 + k,
            ..RetryPolicy::default()
        };

        // --- plain map: one injected fault, retries recover ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client_with(&svc, &plan, policy(0), format);
        match client.map(plain_request(&format!("plain-{label}"))) {
            Ok(Response::Map(m)) => assert!(m.lease.is_none()),
            other => panic!("plain map under {label}: {other:?}"),
        }
        assert_conserved(&svc, &format!("plain map under {label}"));

        // --- reserving map: exactly one lease, however the fault lands ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client_with(&svc, &plan, policy(1), format);
        let leases_before = svc.inventory().active_leases();
        let lease = match client.map(reserve_request(&format!("reserve-{label}"))) {
            Ok(Response::Map(m)) => m.lease.expect("reservation grants a lease"),
            other => panic!("reserving map under {label}: {other:?}"),
        };
        assert_eq!(
            svc.inventory().active_leases(),
            leases_before + 1,
            "fault {label} duplicated or dropped a lease"
        );
        assert_conserved(&svc, &format!("reserving map under {label}"));

        // --- release: freed exactly once; a re-executed release after a
        // lost response is a clean unknown_lease, never a double-free ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client_with(&svc, &plan, policy(2), format);
        match client.release(&format!("release-{label}"), lease) {
            Ok(Response::Release { .. }) => {}
            Ok(Response::Error(e)) => assert_eq!(
                e.code,
                ErrorCode::UnknownLease,
                "release under {label}: {e:?}"
            ),
            other => panic!("release under {label}: {other:?}"),
        }
        assert_eq!(svc.inventory().free_nodes(), caps, "nodes lost by {label}");
        assert_conserved(&svc, &format!("release under {label}"));

        // --- stats: read-only, always retry-safe ---
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client_with(&svc, &plan, policy(3), format);
        match client.stats(&format!("stats-{label}")) {
            Ok(Response::Stats(_)) => {}
            other => panic!("stats under {label}: {other:?}"),
        }
        assert_conserved(&svc, &format!("stats under {label}"));
    }
}

#[test]
fn every_fault_resolves_every_request_kind_without_hang_or_leak() {
    fault_matrix_over(WireFormat::V1Json);
}

/// The identical matrix over binary frames: the chaos layer operates
/// on raw bytes, so mid-frame disconnects, partial writes (splitting
/// the length prefix), and garbled frames all land on the v2 decoder.
#[test]
fn every_fault_resolves_every_request_kind_over_v2_frames() {
    fault_matrix_over(WireFormat::V2Binary);
}

#[test]
fn lost_response_on_reserving_map_replays_the_same_lease() {
    // The classic double-reservation window: the server reserved, the
    // response died on the wire. The auto idempotency key must make the
    // retry replay the stored response — same lease id, one lease held.
    for fault in [
        Fault::ReadTimeout,
        Fault::DisconnectMidResponse,
        Fault::GarbledResponse,
        Fault::Latency(5_000),
    ] {
        let svc = service();
        let plan = FaultPlan::script([fault]);
        let mut client = chaos_client(&svc, &plan, RetryPolicy::default());
        let resp = client.map(reserve_request("idem"));
        let Ok(Response::Map(m)) = resp else {
            panic!("reserve under {}: {resp:?}", fault.label());
        };
        assert!(m.lease.is_some());
        assert_eq!(
            svc.inventory().active_leases(),
            1,
            "{} caused a duplicate reservation",
            fault.label()
        );
        let stats = svc.stats("after", false);
        assert_eq!(
            stats.replays,
            1,
            "{} should have been answered from the idempotency cache",
            fault.label()
        );
        assert_eq!(stats.served, 1, "the solve must have run exactly once");
        assert_conserved(&svc, fault.label());
        assert_eq!(plan.injected(), vec![fault.label()]);
    }
}

#[test]
fn exhausted_retry_budget_is_a_typed_retryable_error() {
    let svc = service();
    let plan = FaultPlan::script([Fault::ConnectRefused; 4]);
    let mut client = chaos_client(&svc, &plan, RetryPolicy::default());
    match client.map(plain_request("doomed")) {
        Err(ClientError::Retryable {
            attempts,
            last_error,
        }) => {
            assert_eq!(attempts, 4);
            assert!(last_error.contains("refused"), "{last_error}");
        }
        other => panic!("expected a typed retryable error, got {other:?}"),
    }
    // Nothing ever reached the service.
    assert_eq!(svc.stats("s", false).served, 0);
    assert_conserved(&svc, "exhausted budget");
}

/// An ambiguous failure on a reserving, keyless `send` is Fatal even
/// when the budget is spent: calling it `Retryable` would invite the
/// blind manual retry — and double reservation — the classification
/// exists to stop. The server *did* process the request.
#[test]
fn keyless_reserving_send_is_fatal_even_on_the_final_attempt() {
    use geomap_service::Request;

    let svc = service();
    let plan = FaultPlan::script([Fault::ReadTimeout]);
    let mut client = chaos_client(
        &svc,
        &plan,
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
    );
    match client.send(&Request::Map(reserve_request("no-key"))) {
        Err(ClientError::Fatal(m)) => assert!(m.contains("idempotency"), "{m}"),
        other => panic!("expected fatal, got {other:?}"),
    }
    // The lease exists server-side — exactly why a blind retry is unsafe.
    assert_eq!(svc.inventory().active_leases(), 1);
    assert_conserved(&svc, "final-attempt ambiguity");
}

/// `map()` auto-keys a reserving request even at `max_attempts == 1`,
/// so the same lost response is merely Retryable: the key makes the
/// caller's own later retry safe (it would replay, not re-reserve).
#[test]
fn single_attempt_map_still_gets_an_auto_idempotency_key() {
    let svc = service();
    let plan = FaultPlan::script([Fault::ReadTimeout]);
    let mut client = chaos_client(
        &svc,
        &plan,
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
    );
    match client.map(reserve_request("one-shot")) {
        Err(ClientError::Retryable { attempts, .. }) => assert_eq!(attempts, 1),
        other => panic!("expected retryable exhaustion, got {other:?}"),
    }
    assert_conserved(&svc, "single-attempt keyed map");
}

#[test]
fn non_retryable_refusals_are_returned_not_retried() {
    let svc = service();
    svc.begin_shutdown();
    let plan = FaultPlan::script([]);
    let mut client = chaos_client(&svc, &plan, RetryPolicy::default());
    match client.map(plain_request("late")) {
        Ok(Response::Error(e)) => assert_eq!(e.code, ErrorCode::ShuttingDown),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    // One rejection recorded: the client did not burn retries on a
    // refusal that retrying cannot fix.
    assert_eq!(svc.stats("s", false).rejected, 1);
}

// ------------------------------------------------------------- storm

/// A deterministic, wall-clock-free signature of one client outcome.
/// Timing fields (`solve_s`, `queue_wait_s`) are real elapsed seconds
/// and are deliberately excluded.
fn signature(outcome: &Result<Response, ClientError>) -> String {
    match outcome {
        Ok(Response::Map(m)) => format!(
            "map id={} sites={:?} cost={:016x} tier={} lease={:?} degraded={} stale={}",
            m.id,
            m.mapping,
            m.cost.to_bits(),
            m.cached.label(),
            m.lease,
            m.degraded,
            m.staleness
        ),
        Ok(Response::Release {
            id,
            freed,
            free_nodes,
        }) => format!("release id={id} freed={freed:?} free={free_nodes:?}"),
        Ok(Response::Stats(s)) => format!(
            "stats served={} replays={} rejected={} leases={} free={:?}",
            s.served, s.replays, s.rejected, s.active_leases, s.free_nodes
        ),
        Ok(Response::Shutdown { id, draining }) => format!("shutdown id={id} draining={draining}"),
        Ok(Response::Error(e)) => format!(
            "error id={} code={} msg={}",
            e.id,
            e.code.label(),
            e.message
        ),
        Ok(Response::Journal(j)) => format!(
            "journal id={} key={} held={} lease={:?} counts={:?}",
            j.id, j.key, j.held, j.lease, j.site_counts
        ),
        Ok(Response::TraceDump(d)) => format!(
            "trace-dump id={} tracks={} events={} dropped={}",
            d.id,
            d.tracks.len(),
            d.events.len(),
            d.dropped
        ),
        Ok(Response::RemapDiff(d)) => format!(
            "remap id={} sites={:?} moved={:?} old={:016x} new={:016x} lease={:?}",
            d.id,
            d.mapping,
            d.moved,
            d.old_cost.to_bits(),
            d.new_cost.to_bits(),
            d.lease
        ),
        Err(e) => format!("client-error {e}"),
    }
}

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC4A05)
}

/// One full storm: a fixed request mix through a seeded fault schedule
/// against a fresh service. Returns every observable the run produced.
fn run_storm(seed: u64, format: WireFormat) -> (Vec<String>, Vec<&'static str>, u64) {
    let svc = service();
    let plan = FaultPlan::seeded(seed, 64, 0.6);
    let policy = RetryPolicy {
        max_attempts: 3,
        seed: seed ^ 0xFEED,
        ..RetryPolicy::default()
    };
    let mut client = chaos_client_with(&svc, &plan, policy, format);
    let mut outcomes = Vec::new();
    let mut lease: Option<u64> = None;
    for round in 0..16u32 {
        let outcome = match round % 4 {
            0 => {
                let r = client.map(reserve_request(&format!("storm-{round}")));
                if let Ok(Response::Map(m)) = &r {
                    lease = m.lease;
                }
                r
            }
            1 => client.map(plain_request(&format!("storm-{round}"))),
            2 => client.stats("storm"),
            // Round 3 releases whatever round 0 managed to reserve; a
            // dangling id degrades to a clean unknown_lease.
            _ => client.release("storm", lease.take().unwrap_or(u64::MAX)),
        };
        outcomes.push(signature(&outcome));
        assert_conserved(&svc, &format!("storm round {round}"));
    }
    (outcomes, plan.injected(), plan.virtual_elapsed_ms())
}

#[test]
fn same_seed_yields_bit_identical_outcome_sequences() {
    let seed = chaos_seed();
    for format in [WireFormat::V1Json, WireFormat::V2Binary] {
        let (outcomes_a, injected_a, clock_a) = run_storm(seed, format);
        let (outcomes_b, injected_b, clock_b) = run_storm(seed, format);
        let label = format.label();
        assert_eq!(
            injected_a, injected_b,
            "fault schedules diverged for seed {seed:#x} over {label}"
        );
        assert_eq!(
            clock_a, clock_b,
            "virtual clocks diverged for seed {seed:#x} over {label}"
        );
        assert_eq!(
            outcomes_a.len(),
            outcomes_b.len(),
            "outcome counts diverged for seed {seed:#x} over {label}"
        );
        for (i, (a, b)) in outcomes_a.iter().zip(&outcomes_b).enumerate() {
            assert_eq!(a, b, "outcome {i} diverged for seed {seed:#x} over {label}");
        }
    }
}

/// The storm is also *format*-independent: the same fault schedule on
/// the same seed must yield the same outcomes, injected-fault trace,
/// and virtual clock whether the bytes on the wire were JSON lines or
/// binary frames. Any divergence means a fault class one decoder
/// survives differently from the other. The one legitimate difference
/// is the decoder's own description of mangled bytes ("malformed
/// response JSON" vs "truncated frame"), which [`decoder_agnostic`]
/// cuts before comparing.
fn decoder_agnostic(sig: &str) -> String {
    match sig.find("garbled response:") {
        Some(cut) => format!("{}garbled response", &sig[..cut]),
        None => sig.to_string(),
    }
}

#[test]
fn same_seed_storms_agree_across_wire_formats() {
    let seed = chaos_seed();
    let v1 = run_storm(seed, WireFormat::V1Json);
    let v2 = run_storm(seed, WireFormat::V2Binary);
    assert_eq!(
        v1.1, v2.1,
        "injected-fault traces diverged for seed {seed:#x}"
    );
    assert_eq!(v1.2, v2.2, "virtual clocks diverged for seed {seed:#x}");
    for (i, (a, b)) in v1.0.iter().zip(&v2.0).enumerate() {
        assert_eq!(
            decoder_agnostic(a),
            decoder_agnostic(b),
            "outcome {i} diverged between formats for seed {seed:#x}"
        );
    }
}

#[test]
fn different_seeds_change_the_fault_schedule() {
    // Not a tautology: it pins that the seed actually reaches the
    // schedule (a plan ignoring its seed would pass the identity test).
    let a = FaultPlan::seeded(1, 64, 0.6);
    let b = FaultPlan::seeded(2, 64, 0.6);
    let svc = service();
    for plan in [&a, &b] {
        let mut client = chaos_client(&svc, plan, RetryPolicy::default());
        let _ = client.stats("probe");
        let _ = client.stats("probe");
        let _ = client.stats("probe");
    }
    assert_ne!(
        a.injected(),
        b.injected(),
        "seeds 1 and 2 produced identical injected-fault traces"
    );
}

// ------------------------------------------------- raw-socket chaos

// The loopback chaos above exercises fault *semantics*; these
// scenarios aim the same fault shapes at the real reactor: torn
// frames on live sockets, writes split inside the length prefix,
// garbage inside structurally valid frames, and hostile headers.

fn bind_server() -> MappingServer {
    MappingServer::bind(
        MappingService::new(network(), ServiceConfig::default()),
        "127.0.0.1:0",
    )
    .expect("bind loopback")
}

/// Read one whole response frame off a raw socket and decode it.
fn read_response_frame(stream: &mut std::net::TcpStream) -> (u64, Response) {
    use std::io::Read;
    let mut header = [0u8; FRAME_HEADER_BYTES];
    stream.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes(header[11..15].try_into().unwrap()) as usize;
    let mut whole = header.to_vec();
    whole.resize(FRAME_HEADER_BYTES + len, 0);
    stream
        .read_exact(&mut whole[FRAME_HEADER_BYTES..])
        .expect("frame payload");
    WireFormat::decode_response(&whole).expect("decode response frame")
}

#[test]
fn mid_frame_disconnect_leaves_the_server_serving() {
    use std::io::Write;

    let server = bind_server();
    let addr = server.local_addr().to_string();
    let timeout = Some(Duration::from_secs(30));

    // A client dies after writing half a frame (header plus a partial
    // payload): the reactor must simply drop the connection.
    let wire = frame::encode_request(&Request::Map(reserve_request("torn")), 5);
    {
        let mut torn = std::net::TcpStream::connect(&addr).expect("connect");
        torn.write_all(&wire[..wire.len() / 2]).expect("half write");
        torn.flush().expect("flush");
    } // dropped here, mid-frame

    // The server keeps answering, and since the torn request never
    // completed, no lease was ever created for it.
    let mut client =
        ServiceClient::connect_with(&addr, timeout, WireFormat::V2Binary).expect("connect");
    match client
        .map(plain_request("after-torn"))
        .expect("map after torn frame")
    {
        Response::Map(m) => assert!(m.lease.is_none()),
        other => panic!("map after torn frame: {other:?}"),
    }
    assert_eq!(server.service().inventory().active_leases(), 0);
    assert_conserved(server.service(), "mid-frame disconnect");
    client.shutdown("bye").expect("shutdown");
    server.join();
}

#[test]
fn writes_split_inside_the_length_prefix_still_decode() {
    use std::io::Write;

    let server = bind_server();
    let addr = server.local_addr().to_string();
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).ok();

    // Deliver one stats frame in three writes with pauses between:
    // magic alone, then up to the middle of the length prefix, then
    // the rest. The reactor must treat every prefix as Pending.
    let wire = frame::encode_request(
        &Request::Stats {
            id: "split".into(),
            detail: false,
        },
        77,
    );
    for chunk in [&wire[..1], &wire[1..13], &wire[13..]] {
        stream.write_all(chunk).expect("chunk write");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(30));
    }
    let (corr, response) = read_response_frame(&mut stream);
    assert_eq!(corr, 77, "correlation id lost across split writes");
    assert!(matches!(response, Response::Stats(_)), "{response:?}");

    drop(stream);
    let mut client =
        ServiceClient::connect_with(&addr, Some(Duration::from_secs(30)), WireFormat::V2Binary)
            .expect("connect");
    client.shutdown("bye").expect("shutdown");
    server.join();
}

#[test]
fn garbage_inside_a_valid_frame_is_an_error_and_the_connection_survives() {
    use std::io::Write;

    let server = bind_server();
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");

    // Structurally valid frame, nonsense payload: the reject must echo
    // the correlation id and keep the connection usable.
    let junk = Frame {
        kind: frame::FrameKind::Request,
        corr_id: 42,
        payload: vec![0xFF; 33],
    };
    stream.write_all(&junk.encode()).expect("junk write");
    let (corr, response) = read_response_frame(&mut stream);
    assert_eq!(corr, 42, "reject must echo the offending frame's corr id");
    match response {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest, "{e:?}"),
        other => panic!("expected bad_request, got {other:?}"),
    }

    // Same connection, now a well-formed request: still served.
    stream
        .write_all(&frame::encode_request(
            &Request::Stats {
                id: "ok".into(),
                detail: false,
            },
            43,
        ))
        .expect("stats write");
    let (corr, response) = read_response_frame(&mut stream);
    assert_eq!(corr, 43);
    assert!(matches!(response, Response::Stats(_)), "{response:?}");

    stream
        .write_all(&frame::encode_request(
            &Request::Shutdown { id: "bye".into() },
            44,
        ))
        .expect("shutdown write");
    let _ = read_response_frame(&mut stream);
    server.join();
}

#[test]
fn hostile_frame_headers_are_refused_and_the_connection_closed() {
    use std::io::{Read, Write};

    let server = bind_server();

    // (declared length u32::MAX, expected code), (bad version, code)
    let hostile: [(Vec<u8>, ErrorCode); 2] = [
        (
            {
                let mut h = vec![FRAME_MAGIC, FRAME_VERSION, 1];
                h.extend_from_slice(&9u64.to_le_bytes());
                h.extend_from_slice(&u32::MAX.to_le_bytes());
                h
            },
            ErrorCode::BadRequest,
        ),
        (
            {
                let mut h = vec![FRAME_MAGIC, 9, 1];
                h.extend_from_slice(&9u64.to_le_bytes());
                h.extend_from_slice(&0u32.to_le_bytes());
                h
            },
            ErrorCode::UnsupportedVersion,
        ),
    ];
    for (header, expected) in hostile {
        let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&header).expect("hostile write");
        let (_, response) = read_response_frame(&mut stream);
        match response {
            Response::Error(e) => assert_eq!(e.code, expected, "{e:?}"),
            other => panic!("expected {}, got {other:?}", expected.label()),
        }
        // A broken frame is fatal for the connection: EOF follows.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("read to eof");
        assert!(rest.is_empty(), "server kept talking after a broken frame");
    }
    assert_conserved(server.service(), "hostile headers");

    let mut client = ServiceClient::connect_with(
        &server.local_addr().to_string(),
        Some(Duration::from_secs(30)),
        WireFormat::V2Binary,
    )
    .expect("connect");
    client.shutdown("bye").expect("shutdown");
    server.join();
}

/// The pipelined-pileup storm: many in-flight reserving requests per
/// socket across a pool, twice (the second run replays every keyed
/// response), then release everything. The ledger must balance after
/// every phase and every response must answer its own request.
#[test]
fn pipelined_pileup_conserves_the_ledger() {
    let server = bind_server();
    let addr = server.local_addr().to_string();
    let svc = Arc::clone(server.service());
    let caps = svc.inventory().capacities();
    let total: usize = caps.iter().sum();

    let batch: Vec<Request> = (0..12)
        .map(|i| {
            Request::Map(MapRequest {
                idempotency_key: Some(format!("pileup-{i}")),
                ..reserve_request(&format!("pileup-{i}"))
            })
        })
        .collect();

    let mut pool = PooledClient::new(&addr, 4, Some(Duration::from_secs(30)));
    let first = pool.pipeline(&batch).expect("first pileup");
    assert_conserved(&svc, "first pileup");
    let mut leases = Vec::new();
    for (i, response) in first.iter().enumerate() {
        match response {
            Response::Map(m) => {
                assert_eq!(
                    m.id,
                    format!("pileup-{i}"),
                    "response answered the wrong request"
                );
                leases.push(m.lease.expect("reserving map grants a lease"));
            }
            Response::Error(e) => assert_eq!(
                e.code,
                ErrorCode::InsufficientNodes,
                "unexpected pileup failure: {e:?}"
            ),
            other => panic!("pileup[{i}]: {other:?}"),
        }
    }
    assert_eq!(
        leases.len() * 4 + svc.inventory().free_nodes().iter().sum::<usize>(),
        total,
        "leases and free nodes disagree after the pileup"
    );

    // Replay: the same keyed batch must grant the *same* leases, not
    // new ones — even when the requests race down four sockets.
    let replayed = pool.pipeline(&batch).expect("replayed pileup");
    assert_conserved(&svc, "replayed pileup");
    for (a, b) in first.iter().zip(&replayed) {
        assert_eq!(a, b, "a pipelined replay diverged from the original");
    }
    assert_eq!(svc.inventory().active_leases(), leases.len());

    // Release every lease through the same pipelined path.
    let releases: Vec<Request> = leases
        .iter()
        .enumerate()
        .map(|(i, &lease)| Request::Release {
            id: format!("free-{i}"),
            lease,
        })
        .collect();
    for response in pool.pipeline(&releases).expect("pipelined releases") {
        assert!(matches!(response, Response::Release { .. }), "{response:?}");
    }
    assert_eq!(svc.inventory().active_leases(), 0);
    assert_eq!(svc.inventory().free_nodes(), caps);
    assert_conserved(&svc, "pipelined releases");

    let mut client =
        ServiceClient::connect_with(&addr, Some(Duration::from_secs(30)), WireFormat::V2Binary)
            .expect("connect");
    client.shutdown("bye").expect("shutdown");
    server.join();
}

// ------------------------------------------------- federation chaos

type ChaosShard = FaultyConnector<LoopbackConnector>;

/// A 3-shard federation over chaos loopbacks: one fresh service per
/// plan, all sharing `clock` when given (so a virtual-time jump hits
/// every shard's lease expiry at once).
fn federation(
    plans: &[Arc<FaultPlan>],
    policy: RetryPolicy,
    clock: Option<&Arc<VirtualClock>>,
) -> (Vec<Arc<MappingService>>, ShardRouter<ChaosShard>) {
    let services: Vec<Arc<MappingService>> = plans
        .iter()
        .map(|_| match clock {
            Some(c) => Arc::new(MappingService::new(
                network(),
                ServiceConfig {
                    clock: Arc::clone(c) as Arc<dyn Clock>,
                    ..ServiceConfig::default()
                },
            )),
            None => service(),
        })
        .collect();
    let shards = services
        .iter()
        .zip(plans)
        .enumerate()
        .map(|(i, (svc, plan))| {
            let connector = FaultyConnector::new(
                LoopbackConnector::new(Arc::clone(svc)).with_format(WireFormat::V2Binary),
                Arc::clone(plan),
            )
            .with_attempt_budget(Duration::from_secs(1));
            (format!("shard-{i}"), connector)
        })
        .collect();
    (services, ShardRouter::new(shards, policy))
}

/// The global invariant: per-shard conservation on an atomic ledger
/// snapshot, plus `Σ_shards (free + leases) == Σ_shards capacity`.
fn assert_federation_conserved(services: &[Arc<MappingService>], context: &str) {
    let (mut total_free, mut total_leased, mut total_cap) = (0usize, 0usize, 0usize);
    for (i, svc) in services.iter().enumerate() {
        let caps = svc.inventory().capacities();
        let (free, leased) = svc.inventory().ledger();
        for j in 0..caps.len() {
            assert_eq!(
                free[j] + leased[j],
                caps[j],
                "conservation broken on shard {i} site {j} after {context}"
            );
        }
        total_free += free.iter().sum::<usize>();
        total_leased += leased.iter().sum::<usize>();
        total_cap += caps.iter().sum::<usize>();
    }
    assert_eq!(
        total_free + total_leased,
        total_cap,
        "global ledger broke after {context}"
    );
}

fn federation_leases(services: &[Arc<MappingService>]) -> usize {
    services.iter().map(|s| s.inventory().active_leases()).sum()
}

/// The headline scenario: the home shard is partitioned *after*
/// processing — every attempt lands and reserves, every response is
/// lost — so the retry fails over to a sibling and succeeds there. The
/// router must notice the home's reservation state is unknown, probe
/// its journal, and release the orphaned lease: exactly one lease in
/// the whole federation, on the shard that actually answered.
#[test]
fn partitioned_home_shard_fails_over_and_reconciles_to_one_lease() {
    let request = reserve_request("fed-partition");
    let names = ["shard-0", "shard-1", "shard-2"];
    let home = ShardMap::new(&names).shard_for(affinity_fingerprint(&request));

    let policy = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    let plans: Vec<Arc<FaultPlan>> = (0..names.len())
        .map(|i| {
            if i == home {
                FaultPlan::script([Fault::ReadTimeout, Fault::ReadTimeout])
            } else {
                FaultPlan::script([])
            }
        })
        .collect();
    let (services, mut router) = federation(&plans, policy, None);

    let routed = router.map(request).expect("failover must succeed");
    assert_eq!(routed.home, home, "ring owner moved");
    assert_ne!(
        routed.shard, home,
        "the partitioned home cannot have answered"
    );
    let Response::Map(m) = &routed.response else {
        panic!("expected a map answer, got {:?}", routed.response);
    };
    let lease = m.lease.expect("reserving map grants a lease");
    assert_eq!(router.home_answers(), 0);
    assert_eq!(router.failovers(), 1);

    // The home processed both lost attempts (idempotently: one lease)
    // and journaled it; reconciliation inside `map` must already have
    // probed the journal and released it.
    assert_eq!(
        router.pending_reconciliations(),
        0,
        "reconciliation left pending"
    );
    assert_eq!(
        services[home].inventory().active_leases(),
        0,
        "home kept its orphaned lease"
    );
    assert!(
        services[home].journal().is_empty(),
        "released lease must leave the home journal"
    );
    assert_eq!(services[routed.shard].inventory().active_leases(), 1);
    assert_eq!(
        federation_leases(&services),
        1,
        "exactly-once broken across the federation"
    );
    assert_federation_conserved(&services, "partitioned home failover");

    // Tear down through the router: back to a fully free federation.
    match router.release(routed.shard, lease) {
        Ok(Response::Release { .. }) => {}
        other => panic!("release through the router failed: {other:?}"),
    }
    assert_eq!(federation_leases(&services), 0);
    assert_federation_conserved(&services, "post-release");
}

/// Regression: a stale pending entry from an earlier, fully-failed
/// attempt must not release the lease a same-key retry later wins.
/// Round one is a total blackout — every shard journals an orphaned
/// lease and all three `(shard, key)` pairs queue for reconciliation.
/// The partition heals and the client retries under the same key; the
/// answering shard idempotently replays the very lease its stale queue
/// entry points at. The router must purge that entry instead of
/// reconciling it, or the client would be handed an already-released
/// lease and its nodes could be double-reserved.
#[test]
fn same_key_retry_after_blackout_keeps_the_winning_lease() {
    let mut request = reserve_request("fed-stale-pending");
    request.idempotency_key = Some("stale-pending-key".into());
    let names = ["shard-0", "shard-1", "shard-2"];
    let home = ShardMap::new(&names).shard_for(affinity_fingerprint(&request));

    let policy = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    let plans: Vec<Arc<FaultPlan>> = (0..3)
        .map(|_| FaultPlan::script([Fault::ReadTimeout, Fault::ReadTimeout]))
        .collect();
    let (services, mut router) = federation(&plans, policy, None);

    router
        .map(request.clone())
        .expect_err("the blackout round must fail on every shard");
    assert_eq!(federation_leases(&services), 3);
    assert_eq!(router.pending_reconciliations(), 3);
    assert_federation_conserved(&services, "stale-pending blackout");

    // The partition heals (scripts exhausted); the same keyed request
    // retries and the home answers by replaying its journaled lease.
    let routed = router.map(request).expect("the healed retry must succeed");
    assert_eq!(routed.shard, home, "the healed home answers its own key");
    let Response::Map(m) = &routed.response else {
        panic!("expected a map answer, got {:?}", routed.response);
    };
    let lease = m.lease.expect("reserving map grants a lease");

    // The winner's lease stays live; only the two sibling orphans were
    // reconciled away.
    assert_eq!(router.pending_reconciliations(), 0);
    assert!(
        services[home].inventory().lease_counts(lease).is_some(),
        "reconciliation released the lease the client now holds"
    );
    assert_eq!(services[home].inventory().active_leases(), 1);
    assert_eq!(
        federation_leases(&services),
        1,
        "exactly-once broken: expected only the client-held lease to survive"
    );
    assert_federation_conserved(&services, "same-key retry after blackout");

    match router.release(routed.shard, lease) {
        Ok(Response::Release { .. }) => {}
        other => panic!("release through the router failed: {other:?}"),
    }
    assert_eq!(federation_leases(&services), 0);
}

/// Exactly-zero on total failure: every shard processes the keyed
/// attempt and loses the response, the client runs out of shards, and
/// the federation transiently holds three leases for one request.
/// `reconcile` must claw back all of them.
#[test]
fn total_partition_reconciles_every_orphaned_lease_to_zero() {
    let policy = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    let plans: Vec<Arc<FaultPlan>> = (0..3)
        .map(|_| FaultPlan::script([Fault::ReadTimeout, Fault::ReadTimeout]))
        .collect();
    let (services, mut router) = federation(&plans, policy, None);

    let err = router
        .map(reserve_request("fed-blackout"))
        .expect_err("every shard was partitioned");
    assert!(
        matches!(err, ClientError::Retryable { .. }),
        "keyed reserving maps must stay retryable, got {err:?}"
    );

    // Every shard processed a lost attempt: three orphans, all queued.
    assert_eq!(federation_leases(&services), 3);
    assert_eq!(router.pending_reconciliations(), 3);
    assert_federation_conserved(&services, "blackout (pre-reconcile)");

    // The partition "heals" (the scripts are exhausted): one reconcile
    // round releases all three orphans.
    assert_eq!(router.reconcile(), 3, "all three orphans must be released");
    assert_eq!(router.pending_reconciliations(), 0);
    assert_eq!(
        federation_leases(&services),
        0,
        "exactly-zero broken: a failed request left a lease behind"
    );
    assert_federation_conserved(&services, "blackout (post-reconcile)");
}

/// One cross-shard storm: 12 keyed reserving rounds through per-shard
/// seeded fault schedules, reconciling to quiescence and asserting the
/// global invariant after every round. A mid-storm virtual-time jump
/// expires every TTL'd lease in place on all shards at once. Returns
/// the outcome signatures and per-shard injected-fault traces.
fn run_federated_storm(seed: u64) -> (Vec<String>, Vec<Vec<&'static str>>) {
    let clock = Arc::new(VirtualClock::new());
    let plans: Vec<Arc<FaultPlan>> = (0..3)
        .map(|i| FaultPlan::seeded(seed.wrapping_add(i as u64), 48, 0.5))
        .collect();
    let policy = RetryPolicy {
        max_attempts: 3,
        seed: seed ^ 0xFEED,
        ..RetryPolicy::default()
    };
    let (services, mut router) = federation(&plans, policy, Some(&clock));

    let mut outcomes = Vec::new();
    let mut granted: Vec<(usize, u64)> = Vec::new();
    for round in 0..12u32 {
        let ranks = [2usize, 4, 8][(round % 3) as usize];
        let mut request = MapRequest {
            ranks: Some(ranks),
            reserve: true,
            ..MapRequest::new(format!("fedstorm-{round}"), pattern_csv(ranks))
        };
        if round % 2 == 0 {
            request.lease_ttl_ms = Some(5_000);
        }
        match router.map(request) {
            Ok(routed) => {
                if let Response::Map(m) = &routed.response {
                    if let Some(lease) = m.lease {
                        granted.push((routed.shard, lease));
                        // Exactly-once, checked at the journals: the
                        // answering shard is the only one holding a
                        // *live* lease under this round's key.
                        let key = routed.key.as_deref().expect("reserving rides a key");
                        let holders: Vec<usize> = services
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| {
                                s.journal()
                                    .lookup(key)
                                    .is_some_and(|e| s.inventory().lease_counts(e.lease).is_some())
                            })
                            .map(|(i, _)| i)
                            .collect();
                        assert_eq!(
                            holders,
                            vec![routed.shard],
                            "round {round}: live lease holders diverged from the answer"
                        );
                    }
                }
                outcomes.push(format!(
                    "shard={} home={} {}",
                    routed.shard,
                    routed.home,
                    signature(&Ok(routed.response))
                ));
            }
            Err(e) => outcomes.push(signature(&Err(e))),
        }
        if round == 5 {
            // Jump past every TTL: leases expire in place, on every
            // shard at once, mid-reconciliation-debt.
            clock.advance_ms(10_000);
        }
        let mut spins = 0;
        while router.pending_reconciliations() > 0 {
            router.reconcile();
            spins += 1;
            assert!(spins < 64, "round {round}: reconciliation never settled");
        }
        assert_federation_conserved(&services, &format!("federated storm round {round}"));
        clock.advance_ms(10);
    }

    // Drain: release everything granted (expired leases settle as
    // unknown_lease responses; unreachable shards are retried until the
    // finite fault schedules run dry).
    for (shard, lease) in granted {
        let mut attempts = 0;
        loop {
            match router.release(shard, lease) {
                Ok(_) => break,
                Err(_) => {
                    attempts += 1;
                    assert!(attempts < 16, "release of lease {lease} never settled");
                }
            }
        }
    }
    let mut spins = 0;
    while router.pending_reconciliations() > 0 {
        router.reconcile();
        spins += 1;
        assert!(spins < 64, "post-storm reconciliation never settled");
    }
    for (i, svc) in services.iter().enumerate() {
        assert_eq!(
            svc.inventory().active_leases(),
            0,
            "shard {i} still holds leases after the drain"
        );
        assert_eq!(
            svc.inventory().free_nodes(),
            svc.inventory().capacities(),
            "shard {i} did not return to fully free"
        );
    }
    let injected = plans.iter().map(|p| p.injected()).collect();
    (outcomes, injected)
}

#[test]
fn federated_storm_conserves_and_replays_bit_identically() {
    let seed = chaos_seed();
    let (outcomes_a, injected_a) = run_federated_storm(seed);
    let (outcomes_b, injected_b) = run_federated_storm(seed);
    assert_eq!(
        injected_a, injected_b,
        "per-shard fault schedules diverged for seed {seed:#x}"
    );
    assert_eq!(outcomes_a.len(), outcomes_b.len());
    for (i, (a, b)) in outcomes_a.iter().zip(&outcomes_b).enumerate() {
        assert_eq!(a, b, "federated outcome {i} diverged for seed {seed:#x}");
    }
}

// ------------------------------------------------- reconciler churn storm

/// Churn storm: three leased placements under reconciler watch while a
/// seeded schedule expires short-TTL leases and flips site capacities
/// mid-round, with advisory remaps racing the reconciler's own repairs
/// on separate threads. After every round the ledger must balance
/// exactly, and at quiescence each placement's lease must exist exactly
/// once with node counts matching the mapping the reconciler last
/// published — a rebooked lease is the *same* lease moved, never a
/// release/reserve pair that churn could interleave with.
#[test]
fn churn_storm_conserves_and_keeps_leases_exactly_once() {
    use geomap_service::{Reconciler, ReconcilerConfig, WatchedPlacement};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    let clock = Arc::new(VirtualClock::new());
    let svc = Arc::new(MappingService::new(
        network(),
        ServiceConfig {
            clock: Arc::clone(&clock) as Arc<dyn Clock>,
            ..ServiceConfig::default()
        },
    ));
    let caps = svc.inventory().capacities();
    let sites = caps.len();
    let rec = Reconciler::new(Arc::clone(&svc), ReconcilerConfig::default());

    // Three 4-rank placements, one node per site each, on non-expiring
    // leases (live applications; only explicit rebooks may move them).
    let keys = ["app-a", "app-b", "app-c"];
    let mut leases = Vec::new();
    for key in keys {
        let mapping: Vec<usize> = (0..4).map(|r| r % sites).collect();
        let mut counts = vec![0usize; sites];
        for &s in &mapping {
            counts[s] += 1;
        }
        let lease = svc
            .inventory()
            .reserve(&counts, None)
            .expect("placement fits the fresh cluster");
        let mut placement = WatchedPlacement::new(key, pattern_csv(4), mapping);
        placement.lease = Some(lease);
        rec.watch(placement);
        leases.push(lease);
    }

    let mut rng = StdRng::seed_from_u64(0xC1_1112);
    for round in 0..12 {
        // Churn: a short-TTL tenant lease that the next clock jump
        // reaps (drift signal 1), or a capacity flip (drift signal 2).
        if rng.random_range(0..2) == 0 {
            let mut counts = vec![0usize; sites];
            counts[rng.random_range(0..sites)] = 1;
            // Insufficient is fine mid-storm; the churn is best-effort.
            let _ = svc
                .inventory()
                .reserve(&counts, Some(Duration::from_millis(40)));
        } else {
            let site = rng.random_range(0..sites);
            let cap = rng.random_range(3..=6usize);
            svc.inventory().set_capacity(site, cap);
        }
        clock.advance_ms(60);

        // The reconciler repairs while an advisory remap races it.
        let tick = {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || rec.tick())
        };
        let advisory = {
            let svc = Arc::clone(&svc);
            let mapping: Vec<usize> = (0..4).map(|r| (r + round) % sites).collect();
            let request = geomap_service::RemapRequest::new(
                format!("advisory-{round}"),
                pattern_csv(4),
                mapping,
            );
            std::thread::spawn(move || svc.handle(&Request::Remap(request)))
        };
        tick.join().expect("reconciler tick");
        match advisory.join().expect("advisory remap") {
            Response::RemapDiff(d) => assert!(d.lease.is_none()),
            Response::Error(e) => panic!("advisory remap failed: {e:?}"),
            other => panic!("advisory remap answered {other:?}"),
        }
        assert_conserved(&svc, &format!("churn round {round}"));
    }

    // Quiescence: expire any straggling churn leases, then check
    // exactly-once placement leases against the reconciler's view.
    clock.advance_ms(100);
    let (free, leased) = svc.inventory().ledger();
    let caps = svc.inventory().capacities();
    for j in 0..caps.len() {
        assert_eq!(free[j] + leased[j], caps[j], "final ledger, site {j}");
    }
    assert_eq!(
        svc.inventory().active_leases(),
        keys.len(),
        "exactly the three placement leases survive the storm"
    );
    for (key, &lease) in keys.iter().zip(&leases) {
        let held = svc
            .inventory()
            .lease_counts(lease)
            .unwrap_or_else(|| panic!("placement {key} lost its lease"));
        let mapping = rec
            .watched_mapping(key)
            .unwrap_or_else(|| panic!("placement {key} fell off the watch list"));
        let mut expect = vec![0usize; caps.len()];
        for &s in &mapping {
            expect[s] += 1;
        }
        assert_eq!(
            held, expect,
            "{key}: lease counts diverged from the reconciler's mapping"
        );
    }
    assert!(rec.ticks() >= 12);
}
