//! The v1/v2 differential program: proof that the binary protocol is a
//! re-encoding of the JSON protocol, not a reinterpretation.
//!
//! Three layers of evidence, each pinning a different failure mode:
//!
//! 1. **Encode-level**: a corpus of constructed requests and responses
//!    covering every kind and field combination must decode to the
//!    *same struct* through both codecs (`from_line ∘ to_line` vs.
//!    frame payload decode ∘ encode), floats compared by bits.
//! 2. **Live**: one daemon, one v1 connection, one v2 connection; every
//!    deterministic request kind — result-cache-hit maps, degraded
//!    maps, every validation error path, `over_capacity` rejections,
//!    stats, idempotent replays — must produce bit-identical decoded
//!    responses over both protocols. Replays are the strongest case:
//!    the remembered response is replayed verbatim, so even the timing
//!    fields must agree to the bit.
//! 3. **Pipelined**: a [`PooledClient`] batch over v2 must equal the
//!    same corpus sent one-by-one over v1 — correlation-id reordering
//!    and per-connection batching must be invisible in the answers.
//!
//! Because both clients talk to one daemon, every v1 exchange doubles
//! as the pinned v1-client-vs-v2-server compatibility check.

use commgraph::apps::AppKind;
use geomap_service::frame;
use geomap_service::proto::{
    CacheTier, CalibSpec, ErrorCode, ErrorResponse, MapRequest, MapResponse, Request, Response,
    StatsResponse,
};
use geomap_service::wire::WireFormat;
use geomap_service::{MappingServer, MappingService, PooledClient, ServiceClient, ServiceConfig};
use geonet::{presets, InstanceType, SiteNetwork};
use std::time::Duration;

fn network() -> SiteNetwork {
    presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42)
}

fn pattern_csv(ranks: usize) -> String {
    AppKind::parse("sp")
        .expect("sp is a known app")
        .workload(ranks)
        .pattern()
        .to_csv()
}

/// A calibration spec so lossy that every site pair starves (the
/// degraded-fallback scenario from the behavior suite).
fn starving_calibration() -> CalibSpec {
    CalibSpec {
        days: 1,
        probes_per_day: 1,
        loss_rate: 0.999_999,
        seed: 11,
        ..CalibSpec::default()
    }
}

/// The largest integer the v1 protocol can carry faithfully: JSON
/// numbers ride as `f64`, so v1's exact-integer domain ends at 2^53.
/// The daemon never emits counters anywhere near this (leases and
/// stats are small monotonic counts), so inside this domain v2 must
/// match v1 bit-for-bit; beyond it only v2 is faithful (the frame
/// property sweep covers the full u64 range for v2 alone).
const V1_MAX_EXACT: u64 = (1 << 53) - 1;

/// Equality down to float bits: `PartialEq` would already fail on any
/// value drift, but bitwise comparison of the float fields additionally
/// rejects anything that merely *compares* equal (-0.0 vs 0.0).
fn assert_bit_identical(v1: &Response, v2: &Response, what: &str) {
    assert_eq!(v1, v2, "{what}: decoded responses differ");
    if let (Response::Map(a), Response::Map(b)) = (v1, v2) {
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{what}: cost bits");
        assert_eq!(
            a.queue_wait_s.to_bits(),
            b.queue_wait_s.to_bits(),
            "{what}: queue_wait_s bits"
        );
        assert_eq!(
            a.solve_s.to_bits(),
            b.solve_s.to_bits(),
            "{what}: solve_s bits"
        );
    }
}

/// Decode one message through the v1 path and through the sniffing v2
/// path and insist they agree with each other and with the original.
fn assert_encodings_agree(response: &Response, what: &str) {
    let v1 = Response::from_line(&response.to_line())
        .unwrap_or_else(|e| panic!("{what}: v1 decode failed: {e}"));
    let (corr, v2) = WireFormat::decode_response(&frame::encode_response(response, 9))
        .unwrap_or_else(|e| panic!("{what}: v2 decode failed: {e}"));
    assert_eq!(corr, 9, "{what}: correlation id lost");
    assert_bit_identical(&v1, response, &format!("{what} (v1 vs original)"));
    assert_bit_identical(&v2, response, &format!("{what} (v2 vs original)"));
}

// ------------------------------------------------------- encode level

#[test]
fn every_request_kind_decodes_identically_over_both_encodings() {
    let mut full = MapRequest::new("id-é\u{1F30D}", pattern_csv(8));
    full.ranks = Some(8);
    full.constraints_csv = Some("process,site\n0,1\n".into());
    full.algorithm = "montecarlo".into();
    full.seed = V1_MAX_EXACT;
    full.kappa = 17;
    full.samples = 4096;
    full.calibration = CalibSpec {
        days: 3,
        probes_per_day: 7,
        noise_cv: 0.25,
        loss_rate: 0.125,
        seed: 0xC0FFEE,
    };
    full.deadline_ms = Some(V1_MAX_EXACT);
    full.reserve = true;
    full.lease_ttl_ms = Some(0);
    full.use_result_cache = false;
    full.idempotency_key = Some("key-\"quoted\"-\\slash".into());

    let corpus = [
        Request::Map(MapRequest::new("bare", "src,dst,bytes,msgs\n0,1,1,1\n")),
        Request::Map(full),
        Request::Release {
            id: "rel".into(),
            lease: V1_MAX_EXACT,
        },
        Request::Stats {
            id: String::new(),
            detail: false,
        },
        Request::Shutdown { id: "bye\n".into() },
    ];
    for request in &corpus {
        let v1 = Request::from_line(&request.to_line()).expect("v1 request decode");
        let wire = frame::encode_request(request, 3);
        let (f, used) = frame::Frame::decode(&wire).expect("frame decode");
        assert_eq!(used, wire.len());
        assert_eq!(f.corr_id, 3);
        let v2 = frame::decode_request_payload(&f.payload).expect("v2 request decode");
        assert_eq!(&v1, request, "v1 changed the request");
        assert_eq!(v2, v1, "v2 decoded differently from v1");
    }
}

#[test]
fn every_response_kind_decodes_identically_over_both_encodings() {
    let corpus = [
        Response::Map(MapResponse {
            id: "m".into(),
            mapping: vec![0, 3, 1, 2],
            cost: -0.0, // sign bit must survive both codecs
            cached: CacheTier::Result,
            queue_wait_s: 0.000123456789,
            solve_s: f64::MIN_POSITIVE,
            lease: Some(V1_MAX_EXACT),
            site_counts: vec![1, 1, 1, 1],
            free_nodes: vec![0, 4, 4, 4],
            degraded: true,
            staleness: V1_MAX_EXACT,
        }),
        Response::Map(MapResponse {
            id: String::new(),
            mapping: Vec::new(),
            cost: 1.0e308,
            cached: CacheTier::Miss,
            queue_wait_s: 0.0,
            solve_s: 0.0,
            lease: None,
            site_counts: Vec::new(),
            free_nodes: Vec::new(),
            degraded: false,
            staleness: 0,
        }),
        Response::Release {
            id: "r-é".into(),
            freed: vec![4, 0, 0, 0],
            free_nodes: vec![4, 4, 4, 4],
        },
        Response::Stats(StatsResponse {
            id: "s".into(),
            served: V1_MAX_EXACT,
            result_hits: 1,
            problem_hits: 2,
            misses: 3,
            rejected: 4,
            replays: 5,
            free_nodes: vec![16],
            active_leases: 6,
            detail: None,
        }),
        Response::Shutdown {
            id: "q".into(),
            draining: 77,
        },
        Response::Error(ErrorResponse {
            id: "e\"\\".into(),
            code: ErrorCode::DeadlineExceeded,
            message: "spent 12 ms in queue, deadline was 1 ms".into(),
        }),
    ];
    for (i, response) in corpus.iter().enumerate() {
        assert_encodings_agree(response, &format!("corpus[{i}]"));
    }
    // Every error code crosses both wires unchanged.
    for code in [
        ErrorCode::BadRequest,
        ErrorCode::UnsupportedVersion,
        ErrorCode::OverCapacity,
        ErrorCode::DeadlineExceeded,
        ErrorCode::InsufficientNodes,
        ErrorCode::UnknownLease,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
        ErrorCode::Retryable,
        ErrorCode::Degraded,
    ] {
        assert_encodings_agree(
            &Response::Error(ErrorResponse {
                id: "c".into(),
                code,
                message: format!("code {}", code.label()),
            }),
            &format!("error code {}", code.label()),
        );
    }
}

// -------------------------------------------------------------- live

#[test]
fn live_daemon_answers_both_protocols_bit_identically() {
    let server = MappingServer::bind(
        MappingService::new(network(), ServiceConfig::default()),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let timeout = Some(Duration::from_secs(30));

    let mut v1 = ServiceClient::connect(&addr, timeout).expect("v1 connect");
    let mut v2 =
        ServiceClient::connect_with(&addr, timeout, WireFormat::V2Binary).expect("v2 connect");

    // Burn each connection's first-request queue-wait charge on a
    // request whose response carries no timing fields, so every later
    // map response reports exactly 0.0 over both connections.
    v1.stats("warm-conn").expect("v1 stats");
    v2.stats("warm-conn").expect("v2 stats");

    // Warm the caches: the comparison corpus is then answered from the
    // result tier, where solve_s is exactly 0.0 — full bit-identity.
    let base = MapRequest::new("warm", pattern_csv(16));
    match v1.map(base.clone()).expect("warm map") {
        Response::Map(m) => assert_eq!(m.cached, CacheTier::Miss),
        other => panic!("warm-up failed: {other:?}"),
    }
    let lossy = MapRequest {
        calibration: starving_calibration(),
        ..MapRequest::new("warm-lossy", pattern_csv(16))
    };
    match v1.map(lossy.clone()).expect("warm lossy map") {
        Response::Map(m) => assert!(m.degraded, "starved campaign must degrade"),
        other => panic!("lossy warm-up failed: {other:?}"),
    }

    // The differential corpus: every deterministic request kind,
    // including every validation error path the daemon can take.
    let corpus: Vec<(&str, Request)> = vec![
        (
            "result-hit map",
            Request::Map(MapRequest {
                id: "hit".into(),
                ..base.clone()
            }),
        ),
        (
            "degraded result-hit map",
            Request::Map(MapRequest {
                id: "hit-degraded".into(),
                ..lossy.clone()
            }),
        ),
        (
            "zero ranks",
            Request::Map(MapRequest {
                ranks: Some(0),
                ..MapRequest::new("zero", pattern_csv(4))
            }),
        ),
        (
            "too many ranks",
            Request::Map(MapRequest {
                ranks: Some(64),
                ..MapRequest::new("big", pattern_csv(64))
            }),
        ),
        (
            "bad pattern csv",
            Request::Map(MapRequest::new("badpat", "this,is,not\nvalid")),
        ),
        (
            "bad constraints csv",
            Request::Map(MapRequest {
                constraints_csv: Some("wrong,header\n".into()),
                ..MapRequest::new("badcon", pattern_csv(4))
            }),
        ),
        (
            "infeasible constraints",
            Request::Map(MapRequest {
                constraints_csv: Some("process,site\n0,0\n1,0\n2,0\n3,0\n4,0\n".to_string()),
                ranks: Some(8),
                ..MapRequest::new("overflow", pattern_csv(8))
            }),
        ),
        (
            "unknown algorithm",
            Request::Map(MapRequest {
                algorithm: "quantum".into(),
                ..MapRequest::new("alg", pattern_csv(4))
            }),
        ),
        (
            "unknown lease",
            Request::Release {
                id: "ghost".into(),
                lease: 999_999,
            },
        ),
        (
            "stats",
            Request::Stats {
                id: "peek".into(),
                detail: true,
            },
        ),
    ];
    // The stats handler records its own latency into `stats_e2e`, so
    // the second of two consecutive detailed peeks always carries one
    // extra sample in exactly that kind. Scrub it and compare every
    // other field bit-for-bit.
    let scrub_self_observation = |r: &mut Response| {
        if let Response::Stats(s) = r {
            if let Some(d) = &mut s.detail {
                d.hists.retain(|h| h.name != "stats_e2e");
            }
        }
    };
    for (what, request) in &corpus {
        let mut a = v1
            .send(request)
            .unwrap_or_else(|e| panic!("{what} over v1: {e}"));
        let mut b = v2
            .send(request)
            .unwrap_or_else(|e| panic!("{what} over v2: {e}"));
        scrub_self_observation(&mut a);
        scrub_self_observation(&mut b);
        assert_bit_identical(&a, &b, what);
    }

    // Idempotent replay, v1 original → v2 replay: the daemon replays
    // the remembered response *verbatim*, so every field — lease and
    // timings included — must cross the other protocol bit-identically.
    let keyed = |id: &str, key: &str| MapRequest {
        reserve: true,
        ranks: Some(4),
        idempotency_key: Some(key.into()),
        ..MapRequest::new(id, pattern_csv(4))
    };
    let original = v1
        .map(keyed("first", "key-v1-first"))
        .expect("keyed map over v1");
    let replayed = v2
        .map(keyed("first", "key-v1-first"))
        .expect("replay over v2");
    assert_bit_identical(&original, &replayed, "idempotent replay v1→v2");

    // And the mirror: v2 original → v1 replay.
    let original = v2
        .map(keyed("second", "key-v2-first"))
        .expect("keyed map over v2");
    let replayed = v1
        .map(keyed("second", "key-v2-first"))
        .expect("replay over v1");
    assert_bit_identical(&original, &replayed, "idempotent replay v2→v1");

    // Cleanup both leases; a second release of each is the shared
    // unknown-lease error, which must also agree across protocols.
    for response in [&original] {
        if let Response::Map(m) = response {
            let lease = m.lease.expect("reserving map grants a lease");
            v1.release("cleanup", lease).expect("release");
            let a = v1.release("again", lease).expect("double release over v1");
            let b = v2.release("again", lease).expect("double release over v2");
            assert_bit_identical(&a, &b, "double release");
        }
    }

    match v2.shutdown("bye").expect("shutdown over v2") {
        Response::Shutdown { .. } => {}
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    server.join();
}

/// The accept thread's `over_capacity` rejection is written before the
/// server has seen a single client byte, so it is always a v1 line —
/// and the v2 client's sniffing decode must read it identically.
#[test]
fn over_capacity_rejection_reads_identically_for_both_clients() {
    use std::io::Read;

    let config = ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServiceConfig::default()
    };
    let server = MappingServer::bind(MappingService::new(network(), config), "127.0.0.1:0")
        .expect("bind loopback");
    let addr = server.local_addr().to_string();

    // Fill the reactor (one adopted connection) and the queue (one
    // waiting connection).
    let _parked = std::net::TcpStream::connect(&addr).expect("parked connect");
    std::thread::sleep(Duration::from_millis(100));
    let _queued = std::net::TcpStream::connect(&addr).expect("queued connect");
    std::thread::sleep(Duration::from_millis(100));

    // Two more connections are bounced with the same one-line error;
    // one is decoded the v1 way, one through the sniffing v2 path.
    let read_rejection = || -> Vec<u8> {
        let mut s = std::net::TcpStream::connect(&addr).expect("bounced connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut bytes = Vec::new();
        s.read_to_end(&mut bytes).expect("read rejection");
        while bytes.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
            bytes.pop();
        }
        bytes
    };
    let as_v1 = Response::from_line(&String::from_utf8(read_rejection()).expect("utf8 line"))
        .expect("v1 decode of rejection");
    let (corr, as_v2) =
        WireFormat::decode_response(&read_rejection()).expect("sniffing decode of rejection");
    assert_eq!(corr, 0, "a v1 line carries no correlation id");
    assert_bit_identical(&as_v1, &as_v2, "over_capacity rejection");
    match &as_v1 {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::OverCapacity),
        other => panic!("expected over_capacity, got {other:?}"),
    }
    server.join();
}

// --------------------------------------------------------- pipelined

#[test]
fn pooled_pipelined_batch_matches_sequential_v1() {
    let server = MappingServer::bind(
        MappingService::new(network(), ServiceConfig::default()),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let timeout = Some(Duration::from_secs(30));

    // Warm the result cache so the batch is deterministic (and so the
    // pipelined run cannot win by racing the sequential one to a solve).
    let base = MapRequest::new("warm", pattern_csv(16));
    let mut v1 = ServiceClient::connect(&addr, timeout).expect("v1 connect");
    v1.stats("warm-conn").expect("stats");
    v1.map(base.clone()).expect("warm map");

    const POOL: usize = 4;
    // The first request landing on each pooled connection absorbs its
    // queue-wait charge; releases carry no timing fields, so the maps
    // that follow report 0.0 on every connection — same as sequential.
    let mut batch: Vec<Request> = (0..POOL)
        .map(|i| Request::Release {
            id: format!("absorb-{i}"),
            lease: 10_000 + i as u64,
        })
        .collect();
    for i in 0..24 {
        batch.push(match i % 3 {
            0 => Request::Map(MapRequest {
                id: format!("hit-{i}"),
                ..base.clone()
            }),
            1 => Request::Release {
                id: format!("ghost-{i}"),
                lease: 777_000 + i as u64,
            },
            _ => Request::Map(MapRequest {
                ranks: Some(0),
                ..MapRequest::new(format!("bad-{i}"), pattern_csv(4))
            }),
        });
    }

    // Sequential ground truth over v1 (fresh connection; its first
    // request is the first absorb-release, mirroring the pool).
    let mut sequential = Vec::with_capacity(batch.len());
    let mut v1_seq = ServiceClient::connect(&addr, timeout).expect("v1 sequential connect");
    for request in &batch {
        sequential.push(v1_seq.send(request).expect("sequential send"));
    }

    // The same batch, pipelined over the pool.
    let mut pooled = PooledClient::new(&addr, POOL, timeout);
    let pipelined = pooled.pipeline(&batch).expect("pipelined batch");

    assert_eq!(pipelined.len(), sequential.len());
    for (i, (p, s)) in pipelined.iter().zip(&sequential).enumerate() {
        assert_bit_identical(s, p, &format!("batch[{i}]"));
    }

    let mut v2 =
        ServiceClient::connect_with(&addr, timeout, WireFormat::V2Binary).expect("v2 connect");
    match v2.shutdown("bye").expect("shutdown") {
        Response::Shutdown { .. } => {}
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    server.join();
}
