//! Property tests for the hand-rolled JSON layer and the wire structs
//! built on it.
//!
//! The parser faces the network (every daemon request goes through it),
//! so the properties are adversarial: arbitrary bytes never panic it,
//! pathological nesting is an error rather than a stack overflow, and
//! anything the emitter produces parses back to the identical value.
//!
//! Case counts honor the `JSON_PROPTEST_CASES` environment variable so
//! CI's chaos-smoke job can run a reduced sweep; the vendored proptest
//! has no shrinking but seeds deterministically per test, so any
//! failure reproduces exactly on re-run.

use geomap_service::json::{Json, MAX_DEPTH};
use geomap_service::proto::{
    CacheTier, CalibSpec, ErrorCode, ErrorResponse, MapRequest, MapResponse, Request, Response,
    StatsResponse,
};
use proptest::prelude::*;

/// Case count, overridable via `JSON_PROPTEST_CASES` (CI smoke runs).
fn cases(default: u32) -> u32 {
    std::env::var("JSON_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Build a nested [`Json`] value from a flat token stream: a tiny
/// deterministic "decoder" so plain tuple strategies can drive
/// arbitrarily-shaped trees without a recursive strategy combinator.
fn build_value(tokens: &[(u32, i64)], depth: usize) -> Json {
    fn step(tokens: &mut std::slice::Iter<'_, (u32, i64)>, depth: usize) -> Json {
        let Some(&(kind, payload)) = tokens.next() else {
            return Json::Null;
        };
        match kind % if depth == 0 { 4 } else { 6 } {
            0 => Json::Null,
            1 => Json::Bool(payload % 2 == 0),
            2 => Json::Num(payload as f64 / 8.0),
            3 => Json::Str(format!("s{payload}\n\"\\\u{1F30D}")),
            4 => Json::Arr(
                (0..(payload.unsigned_abs() % 3 + 1))
                    .map(|_| step(tokens, depth - 1))
                    .collect(),
            ),
            _ => Json::Obj(
                (0..(payload.unsigned_abs() % 3 + 1))
                    .map(|i| (format!("k{i}"), step(tokens, depth - 1)))
                    .collect(),
            ),
        }
    }
    step(&mut tokens.iter(), depth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    /// Arbitrary bytes (lossily decoded, as the server does) never
    /// panic the parser — they parse or they return `Err`.
    #[test]
    fn parse_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text);
    }

    /// JSON-flavored noise (structural characters, quotes, escapes,
    /// digits) exercises deeper parser states than uniform bytes; it
    /// must also never panic.
    #[test]
    fn parse_never_panics_on_json_like_noise(
        picks in prop::collection::vec(0usize..16, 0..200),
    ) {
        const ALPHABET: [&str; 16] = [
            "{", "}", "[", "]", "\"", "\\", ":", ",", "-", "0", "7", ".",
            "e", "true", "null", "\\u12",
        ];
        let text: String = picks.iter().map(|&i| ALPHABET[i]).collect();
        let _ = Json::parse(&text);
    }

    /// Anything the emitter writes parses back to the identical value
    /// (strings keep their escapes, numbers their bits, objects their
    /// order), and a second emit is textually stable.
    #[test]
    fn emitted_values_parse_back_identically(
        tokens in prop::collection::vec((0u32..6, -1000i64..1000), 1..40),
        depth in 0usize..5,
    ) {
        let value = build_value(&tokens, depth);
        let text = value.emit();
        let back = Json::parse(&text);
        prop_assert!(back.is_ok(), "own output failed to parse: {text}");
        let back = back.unwrap();
        prop_assert_eq!(&back, &value, "round trip changed the value");
        prop_assert_eq!(back.emit(), text, "second emit drifted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Nesting past [`MAX_DEPTH`] is a clean error at any depth — never
    /// a stack overflow (the crash this property originally guarded
    /// against aborts the process, so surviving to `Err` is the test).
    #[test]
    fn deep_nesting_is_an_error_not_a_crash(
        extra in 1usize..2000,
        kind in 0usize..2,
    ) {
        let depth = MAX_DEPTH + extra;
        let text = match kind {
            0 => "[".repeat(depth),
            _ => "{\"k\":".repeat(depth),
        };
        let err = Json::parse(&text);
        prop_assert!(err.is_err(), "depth {depth} parsed");
        prop_assert!(
            err.unwrap_err().contains("nesting"),
            "wrong error at depth {depth}"
        );
    }

    /// Map requests with arbitrary (valid-range) field values survive
    /// the wire bit-for-bit. Integers stay below 2^53: the wire carries
    /// numbers as f64, so larger ones lose precision by design.
    #[test]
    fn map_requests_roundtrip(
        seed in 0u64..(1 << 53),
        ranks in 0usize..512,
        kappa in 1usize..64,
        samples in 1usize..100_000,
        rates in (0.0f64..1.0, 0.0f64..0.999),
        flags in (0u32..8, 0u64..(1 << 30), 0u64..(1 << 30)),
    ) {
        let (noise, loss) = rates;
        let (bits, deadline, ttl) = flags;
        let mut m = MapRequest::new(format!("id-{seed}"), "src,dst,bytes,msgs\n0,1,5,2\n");
        m.ranks = (ranks > 0).then_some(ranks);
        m.constraints_csv = (bits & 1 != 0).then(|| "process,site\n0,1\n".to_string());
        m.algorithm = ["geo", "greedy", "mpipp", "random"][(seed % 4) as usize].into();
        m.seed = seed;
        m.kappa = kappa;
        m.samples = samples;
        m.calibration = CalibSpec {
            days: 1 + (seed % 9) as usize,
            probes_per_day: 1 + (seed % 17) as usize,
            noise_cv: noise,
            loss_rate: loss,
            seed,
        };
        m.deadline_ms = (bits & 2 != 0).then_some(deadline);
        m.reserve = bits & 4 != 0;
        m.lease_ttl_ms = (bits & 2 != 0).then_some(ttl);
        m.use_result_cache = bits & 1 == 0;
        m.idempotency_key = (bits & 4 != 0).then(|| format!("key-{seed}\"\\"));
        let req = Request::Map(m);
        let back = Request::from_line(&req.to_line());
        prop_assert!(back.is_ok(), "own request failed to decode");
        prop_assert_eq!(back.unwrap(), req);
    }

    /// Every response kind survives the wire with generated payloads,
    /// including bit-exact floats.
    #[test]
    fn responses_roundtrip(
        cost in -1.0e12f64..1.0e12,
        lease in 0u64..(1 << 53),
        counts in prop::collection::vec(0usize..100, 1..6),
        served in 0u64..(1 << 40),
        staleness in 0u64..1000,
        pick in 0usize..5,
    ) {
        let response = match pick {
            0 => Response::Map(MapResponse {
                id: "p".into(),
                mapping: counts.clone(),
                cost,
                cached: [CacheTier::Miss, CacheTier::Problem, CacheTier::Result]
                    [(lease % 3) as usize],
                queue_wait_s: cost.abs() / 1e6,
                solve_s: cost.abs() / 1e9,
                lease: (lease % 2 == 0).then_some(lease),
                site_counts: counts.clone(),
                free_nodes: counts.clone(),
                degraded: staleness > 0,
                staleness,
            }),
            1 => Response::Release {
                id: "r".into(),
                freed: counts.clone(),
                free_nodes: counts.clone(),
            },
            2 => Response::Stats(StatsResponse {
                id: "s".into(),
                served,
                result_hits: served / 2,
                problem_hits: served / 3,
                misses: served / 5,
                rejected: served / 7,
                replays: served / 11,
                free_nodes: counts.clone(),
                active_leases: lease % 100,
                detail: None,
            }),
            3 => Response::Shutdown {
                id: "q".into(),
                draining: served,
            },
            _ => Response::Error(ErrorResponse {
                id: "e".into(),
                code: [
                    ErrorCode::BadRequest,
                    ErrorCode::OverCapacity,
                    ErrorCode::Retryable,
                    ErrorCode::Degraded,
                ][(lease % 4) as usize],
                message: format!("m\"\\{cost}"),
            }),
        };
        let back = Response::from_line(&response.to_line());
        prop_assert!(back.is_ok(), "own response failed to decode");
        prop_assert_eq!(back.unwrap(), response);
    }
}
