//! End-to-end behavior of the mapping service: the in-memory mode
//! against the one-shot pipeline (bit-identical), cache tiers, the
//! inventory lifecycle, and the TCP daemon under concurrency.

use commgraph::apps::AppKind;
use geomap_core::pipeline::{self, PipelineConfig};
use geomap_core::{ConstraintVector, GeoMapper};
use geomap_service::proto::{CacheTier, CalibSpec, ErrorCode, Response};
use geomap_service::{
    ClientError, MapRequest, MappingServer, MappingService, Request, RetryPolicy, RetryingClient,
    ServiceClient, ServiceConfig, TcpConnector,
};
use geonet::{presets, InstanceType, SiteNetwork};
use std::time::Duration;

/// The paper's four EC2 regions, 4 nodes each (16 nodes total): big
/// enough for interesting placements, small enough for fast solves.
fn network() -> SiteNetwork {
    presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42)
}

fn pattern_csv(ranks: usize) -> String {
    AppKind::parse("sp")
        .expect("sp is a known app")
        .workload(ranks)
        .pattern()
        .to_csv()
}

fn service() -> MappingService {
    MappingService::new(network(), ServiceConfig::default())
}

#[test]
fn in_memory_map_matches_one_shot_pipeline_bit_for_bit() {
    let svc = service();
    let req = MapRequest::new("r1", pattern_csv(16));
    let resp = svc.handle(&Request::Map(req.clone()));
    let Response::Map(resp) = resp else {
        panic!("expected a map response, got {resp:?}");
    };

    // The equivalent one-shot run: same pattern, same calibration
    // campaign, same mapper seed.
    let pattern = commgraph::CommPattern::from_csv(16, &req.pattern_csv).unwrap();
    let config = PipelineConfig {
        calibration: req.calibration.to_config(),
        mapper: GeoMapper {
            seed: req.seed,
            kappa: req.kappa,
            ..GeoMapper::default()
        },
        ..PipelineConfig::default()
    };
    let one_shot = pipeline::run_with_pattern(
        pattern,
        1.0,
        &network(),
        ConstraintVector::none(16),
        &config,
    );

    let one_shot_sites: Vec<usize> = one_shot
        .mapping
        .as_slice()
        .iter()
        .map(|s| s.index())
        .collect();
    assert_eq!(resp.mapping, one_shot_sites);
    assert_eq!(
        resp.cost.to_bits(),
        one_shot.estimated_cost.to_bits(),
        "daemon cost {} != pipeline cost {}",
        resp.cost,
        one_shot.estimated_cost
    );
    assert_eq!(resp.cached, CacheTier::Miss);
}

#[test]
fn cache_tiers_progress_from_miss_to_problem_to_result() {
    let svc = service();
    let base = MapRequest::new("a", pattern_csv(16));

    let Response::Map(first) = svc.handle(&Request::Map(base.clone())) else {
        panic!("first request failed");
    };
    assert_eq!(first.cached, CacheTier::Miss);

    // Same problem, different solver seed: calibration + problem reused.
    let reseeded = MapRequest {
        id: "b".into(),
        seed: base.seed + 1,
        ..base.clone()
    };
    let Response::Map(second) = svc.handle(&Request::Map(reseeded)) else {
        panic!("reseeded request failed");
    };
    assert_eq!(second.cached, CacheTier::Problem);

    // Identical request: the stored mapping, solve time zero.
    let Response::Map(third) = svc.handle(&Request::Map(MapRequest {
        id: "c".into(),
        ..base.clone()
    })) else {
        panic!("repeat request failed");
    };
    assert_eq!(third.cached, CacheTier::Result);
    assert_eq!(third.mapping, first.mapping);
    assert_eq!(third.cost.to_bits(), first.cost.to_bits());
    assert_eq!(third.solve_s, 0.0);

    // Opting out of the result cache still reuses the problem tier and
    // still produces the identical mapping (determinism, not caching).
    let Response::Map(fourth) = svc.handle(&Request::Map(MapRequest {
        id: "d".into(),
        use_result_cache: false,
        ..base
    })) else {
        panic!("no-cache request failed");
    };
    assert_eq!(fourth.cached, CacheTier::Problem);
    assert_eq!(fourth.mapping, first.mapping);
    assert_eq!(fourth.cost.to_bits(), first.cost.to_bits());
}

#[test]
fn cache_key_distinguishes_rank_count() {
    let svc = service();
    // Same edge list, different rank counts: the pattern CSV carries
    // only edges (among processes 0..8 here) and there are no
    // constraints, so the two requests differ in nothing but `ranks`.
    // They must not collide in either cache tier — a collision would
    // return an 8-long mapping to the 16-rank caller.
    let csv = pattern_csv(8);
    let Response::Map(eight) = svc.handle(&Request::Map(MapRequest {
        ranks: Some(8),
        ..MapRequest::new("n8", csv.clone())
    })) else {
        panic!("8-rank request failed");
    };
    assert_eq!(eight.mapping.len(), 8);

    let Response::Map(sixteen) = svc.handle(&Request::Map(MapRequest {
        ranks: Some(16),
        ..MapRequest::new("n16", csv)
    })) else {
        panic!("16-rank request failed");
    };
    assert_eq!(
        sixteen.cached,
        CacheTier::Miss,
        "a 16-rank request must not hit the 8-rank cache entry"
    );
    assert_eq!(sixteen.mapping.len(), 16);
}

#[test]
fn malformed_requests_get_stable_error_codes() {
    let svc = service();

    let bad_algo = MapRequest {
        algorithm: "quantum".into(),
        ..MapRequest::new("x", pattern_csv(16))
    };
    match svc.handle(&Request::Map(bad_algo)) {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::BadRequest);
            assert!(e.message.contains("algorithm"));
        }
        other => panic!("expected error, got {other:?}"),
    }

    let bad_pattern = MapRequest::new("y", "this,is,not\na_pattern");
    match svc.handle(&Request::Map(bad_pattern)) {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected error, got {other:?}"),
    }

    let too_many = MapRequest {
        ranks: Some(1000),
        ..MapRequest::new("z", pattern_csv(16))
    };
    match svc.handle(&Request::Map(too_many)) {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::BadRequest);
            assert!(e.message.contains("exceed"));
        }
        other => panic!("expected error, got {other:?}"),
    }

    let bad_constraints = MapRequest {
        constraints_csv: Some("process,site\n0,99\n".into()),
        ..MapRequest::new("w", pattern_csv(16))
    };
    match svc.handle(&Request::Map(bad_constraints)) {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn reserve_release_lifecycle_keeps_inventory_exact() {
    let svc = service();
    let capacities = svc.network().capacities();

    let req = MapRequest {
        reserve: true,
        ..MapRequest::new("lease-1", pattern_csv(16))
    };
    let Response::Map(resp) = svc.handle(&Request::Map(req)) else {
        panic!("reserving request failed");
    };
    let lease = resp.lease.expect("reservation grants a lease");
    for (j, free) in resp.free_nodes.iter().enumerate() {
        assert_eq!(*free, capacities[j] - resp.site_counts[j]);
    }

    // 16 processes on 16 nodes: the cluster is now fully committed, so
    // a second reservation must be refused outright.
    let again = MapRequest {
        reserve: true,
        ..MapRequest::new("lease-2", pattern_csv(16))
    };
    match svc.handle(&Request::Map(again)) {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::InsufficientNodes),
        other => panic!("expected insufficient_nodes, got {other:?}"),
    }

    // Teardown returns every node; a second teardown is an error.
    match svc.handle(&Request::Release {
        id: "t".into(),
        lease,
    }) {
        Response::Release { free_nodes, .. } => assert_eq!(free_nodes, capacities),
        other => panic!("expected release, got {other:?}"),
    }
    match svc.handle(&Request::Release {
        id: "t2".into(),
        lease,
    }) {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownLease),
        other => panic!("expected unknown_lease, got {other:?}"),
    }

    let stats = svc.stats("s", false);
    assert_eq!(stats.served, 1);
    assert_eq!(stats.rejected, 2); // insufficient_nodes + unknown_lease
    assert_eq!(stats.active_leases, 0);
}

#[test]
fn shutdown_refuses_new_in_memory_work() {
    let svc = service();
    match svc.handle(&Request::Shutdown { id: "s".into() }) {
        Response::Shutdown { .. } => {}
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    match svc.handle(&Request::Map(MapRequest::new("late", pattern_csv(16)))) {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::ShuttingDown),
        other => panic!("expected shutting_down, got {other:?}"),
    }
}

// -------------------------------------------------------- idempotency

#[test]
fn idempotent_retry_replays_the_same_lease_verbatim() {
    let svc = service();
    let req = MapRequest {
        ranks: Some(4),
        reserve: true,
        idempotency_key: Some("client-a/op-1".into()),
        ..MapRequest::new("first", pattern_csv(4))
    };

    let first = svc.handle(&Request::Map(req.clone()));
    let Response::Map(ref m1) = first else {
        panic!("reserving request failed: {first:?}");
    };
    let lease = m1.lease.expect("reservation grants a lease");

    // The retry carries a new request id (as a real retry would) but
    // the same idempotency key and the same payload: the daemon must
    // replay the stored response verbatim — original id, same lease —
    // without touching the inventory a second time.
    let retry = MapRequest {
        id: "first-retry".into(),
        ..req.clone()
    };
    let second = svc.handle(&Request::Map(retry));
    assert_eq!(second, first, "replay must be byte-identical");
    let Response::Map(m2) = second else {
        unreachable!()
    };
    assert_eq!(m2.lease, Some(lease));

    assert_eq!(svc.inventory().active_leases(), 1, "retry double-reserved");
    let stats = svc.stats("s", false);
    assert_eq!(stats.served, 1, "replay must not count as served");
    assert_eq!(stats.replays, 1);

    // Reusing the key for a *different* request is a client bug the
    // daemon must refuse, not silently answer with the old response.
    let reused = MapRequest {
        id: "reuse".into(),
        seed: req.seed + 1,
        ..req
    };
    match svc.handle(&Request::Map(reused)) {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::BadRequest);
            assert!(e.message.contains("idempotency"), "{e:?}");
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
}

/// Regression (TTL sentinel collision): the request fingerprint used
/// to fold `lease_ttl_ms: None` into a `u64::MAX` sentinel, so a key
/// reused with an explicit `lease_ttl_ms: Some(u64::MAX)` — a
/// *different* request — collided with the no-TTL original and
/// replayed its response instead of being refused. Presence is now
/// fingerprinted as its own discriminant, so every (None vs Some(v))
/// pair is distinct, including the old sentinel and Some(0).
#[test]
fn ttl_presence_is_part_of_the_idempotent_request_identity() {
    let svc = service();
    let no_ttl = MapRequest {
        ranks: Some(4),
        reserve: true,
        idempotency_key: Some("client-c/op-3".into()),
        ..MapRequest::new("no-ttl", pattern_csv(4))
    };
    let first = svc.handle(&Request::Map(no_ttl.clone()));
    assert!(matches!(first, Response::Map(_)), "{first:?}");

    for ttl in [u64::MAX, 0] {
        let reused = MapRequest {
            id: format!("ttl-{ttl}"),
            lease_ttl_ms: Some(ttl),
            ..no_ttl.clone()
        };
        match svc.handle(&Request::Map(reused)) {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::BadRequest, "ttl {ttl}");
                assert!(e.message.contains("idempotency"), "ttl {ttl}: {e:?}");
            }
            other => panic!("Some({ttl}) collided with None: replayed {other:?}"),
        }
    }

    // A genuine retry — TTL field bit-identical — still replays.
    let retry = MapRequest {
        id: "no-ttl-retry".into(),
        ..no_ttl
    };
    assert_eq!(svc.handle(&Request::Map(retry)), first);
    assert_eq!(svc.inventory().active_leases(), 1);
}

// ---------------------------------------------------- lease journal

/// The `journal` request is the federation router's reconciliation
/// probe: "which lease does this idempotency key hold *here*?" It must
/// answer held=true with the live lease, flip to held=false once the
/// lease is released (or was never granted), and lazily evict stale
/// journal entries on lookup.
#[test]
fn journal_requests_report_and_evict_keyed_leases() {
    let svc = service();
    let probe = |id: &str, key: &str| {
        svc.handle(&Request::Journal {
            id: id.into(),
            key: key.into(),
        })
    };

    // No reservation yet: definitively not held.
    match probe("j0", "fed-key") {
        Response::Journal(j) => {
            assert!(!j.held);
            assert_eq!(j.lease, None);
        }
        other => panic!("expected journal response, got {other:?}"),
    }

    let req = MapRequest {
        ranks: Some(4),
        reserve: true,
        idempotency_key: Some("fed-key".into()),
        ..MapRequest::new("keyed", pattern_csv(4))
    };
    let Response::Map(m) = svc.handle(&Request::Map(req)) else {
        panic!("reserving request failed");
    };
    let lease = m.lease.expect("reservation grants a lease");

    // Held, with the live lease and its current site counts.
    match probe("j1", "fed-key") {
        Response::Journal(j) => {
            assert!(j.held);
            assert_eq!(j.lease, Some(lease));
            assert_eq!(j.site_counts, m.site_counts);
            assert_eq!(j.key, "fed-key");
        }
        other => panic!("expected journal response, got {other:?}"),
    }

    // Release through the normal path: the journal entry goes with it.
    match svc.handle(&Request::Release {
        id: "rel".into(),
        lease,
    }) {
        Response::Release { .. } => {}
        other => panic!("release failed: {other:?}"),
    }
    assert!(svc.journal().is_empty(), "release must clear the journal");
    match probe("j2", "fed-key") {
        Response::Journal(j) => assert!(!j.held),
        other => panic!("expected journal response, got {other:?}"),
    }
}

/// A journaled lease whose TTL ran out is not held — and the lookup
/// itself evicts the stale entry (the inventory decides liveness, the
/// journal only remembers grants).
#[test]
fn journal_lookup_evicts_expired_leases() {
    use geomap_service::{Clock, VirtualClock};
    use std::sync::Arc;
    let clock = Arc::new(VirtualClock::new());
    let svc = MappingService::new(
        network(),
        ServiceConfig {
            clock: Arc::clone(&clock) as Arc<dyn Clock>,
            ..ServiceConfig::default()
        },
    );
    let req = MapRequest {
        ranks: Some(4),
        reserve: true,
        lease_ttl_ms: Some(50),
        idempotency_key: Some("ttl-key".into()),
        ..MapRequest::new("keyed", pattern_csv(4))
    };
    assert!(matches!(svc.handle(&Request::Map(req)), Response::Map(_)));
    assert_eq!(svc.journal().len(), 1);

    clock.advance_ms(50);
    match svc.handle(&Request::Journal {
        id: "j".into(),
        key: "ttl-key".into(),
    }) {
        Response::Journal(j) => assert!(!j.held, "expired lease reported held"),
        other => panic!("expected journal response, got {other:?}"),
    }
    assert!(svc.journal().is_empty(), "stale entry must be evicted");
    assert_eq!(svc.inventory().active_leases(), 0);
}

/// Regression (check-then-act replay): a duplicate that arrives while
/// the original keyed request is still solving must not miss the replay
/// cache and reserve a second lease. Single-flight admission parks it
/// until the first response is published. 8 threads race the same key;
/// exactly one solve, one lease, shared by all.
#[test]
fn concurrent_duplicates_of_one_key_reserve_exactly_once() {
    use std::sync::{Arc, Barrier};

    let svc = Arc::new(service());
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let svc = Arc::clone(&svc);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let req = MapRequest {
                    ranks: Some(4),
                    reserve: true,
                    idempotency_key: Some("client-b/op-9".into()),
                    ..MapRequest::new(format!("dup-{i}"), pattern_csv(4))
                };
                barrier.wait();
                svc.handle_map(&req, 0.0)
            })
        })
        .collect();

    let mut leases = std::collections::HashSet::new();
    for h in handles {
        match h.join().expect("duplicate thread") {
            Response::Map(m) => {
                leases.insert(m.lease.expect("reservation grants a lease"));
            }
            other => panic!("duplicate must succeed via replay, got {other:?}"),
        }
    }
    assert_eq!(leases.len(), 1, "duplicates must all share one lease");
    assert_eq!(
        svc.inventory().active_leases(),
        1,
        "a mid-solve retry reserved a second lease"
    );
    let stats = svc.stats("s", false);
    assert_eq!(stats.served, 1, "the solve must have run exactly once");
    assert_eq!(stats.replays, 7, "the other 7 must be replays");
}

// ----------------------------------------------- degraded calibration

/// A calibration spec so lossy that every site pair starves: one probe
/// per pair, each lost with probability 1 - 1e-6.
fn starving_calibration() -> CalibSpec {
    CalibSpec {
        days: 1,
        probes_per_day: 1,
        loss_rate: 0.999_999,
        seed: 11,
        ..CalibSpec::default()
    }
}

#[test]
fn lossy_calibration_degrades_to_last_known_good() {
    let svc = service();

    // Warm run: a clean campaign populates the last-known-good state.
    let Response::Map(warm) = svc.handle(&Request::Map(MapRequest::new("warm", pattern_csv(16))))
    else {
        panic!("warm request failed");
    };
    assert!(!warm.degraded);
    assert_eq!(warm.staleness, 0);

    // Lossy run: every pair starves, so the daemon answers from the
    // last-known-good estimate and says so on the wire.
    let lossy = MapRequest {
        calibration: starving_calibration(),
        ..MapRequest::new("lossy", pattern_csv(16))
    };
    let Response::Map(deg) = svc.handle(&Request::Map(lossy)) else {
        panic!("degraded request should still map");
    };
    assert!(deg.degraded, "starved campaign must surface degraded");
    assert_eq!(deg.staleness, 1, "one generation behind the warm run");
    assert_eq!(
        deg.mapping, warm.mapping,
        "fallback estimate is the warm one, so the placement matches"
    );
}

#[test]
fn lossy_calibration_without_fallback_is_a_degraded_error() {
    // Fresh daemon: no last-known-good exists yet, so a fully starved
    // campaign cannot be answered at all — typed as `degraded`.
    let svc = service();
    let lossy = MapRequest {
        calibration: starving_calibration(),
        ..MapRequest::new("cold-lossy", pattern_csv(16))
    };
    match svc.handle(&Request::Map(lossy)) {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::Degraded);
            assert!(e.message.contains("calibration"), "{e:?}");
        }
        other => panic!("expected degraded error, got {other:?}"),
    }
}

// ---------------------------------------------------------------- TCP

#[test]
fn daemon_serves_64_concurrent_requests_without_oversubscription() {
    let server = MappingServer::bind(service(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let capacities = server.service().network().capacities();

    // 64 concurrent clients: half solve-only (all must agree bit for
    // bit), half reserve 4-rank placements (4 nodes of 16 => at most 4
    // concurrent leases; refusals are over-commit protection working).
    let handles: Vec<_> = (0..64)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client =
                    ServiceClient::connect(&addr, Some(Duration::from_secs(60))).expect("connect");
                let req = if i % 2 == 0 {
                    MapRequest::new(format!("solve-{i}"), pattern_csv(16))
                } else {
                    MapRequest {
                        ranks: Some(4),
                        reserve: true,
                        ..MapRequest::new(format!("reserve-{i}"), pattern_csv(4))
                    }
                };
                client.map(req).expect("request round-trip")
            })
        })
        .collect();

    let mut solve_results: Vec<(Vec<usize>, u64)> = Vec::new();
    let mut leases = Vec::new();
    let mut refused = 0usize;
    for h in handles {
        match h.join().expect("client thread") {
            Response::Map(m) => {
                if let Some(lease) = m.lease {
                    leases.push(lease);
                    for (j, free) in m.free_nodes.iter().enumerate() {
                        assert!(*free <= capacities[j], "free exceeds capacity at site {j}");
                    }
                } else {
                    solve_results.push((m.mapping, m.cost.to_bits()));
                }
            }
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::InsufficientNodes, "unexpected: {e:?}");
                refused += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    // Worker interleaving must not leak into results: all 32 solve-only
    // requests are the same problem + seed, so all 32 answers agree.
    assert_eq!(solve_results.len(), 32);
    for (mapping, cost_bits) in &solve_results[1..] {
        assert_eq!(mapping, &solve_results[0].0);
        assert_eq!(*cost_bits, solve_results[0].1);
    }

    // Conservation: granted leases + refusals account for all 32
    // reservation attempts, and the ledger balances exactly.
    assert_eq!(leases.len() + refused, 32);
    let free_now = server.service().inventory().free_nodes();
    let leased_total: usize = capacities.iter().sum::<usize>() - free_now.iter().sum::<usize>();
    assert_eq!(leased_total, 4 * leases.len());

    // Explicit teardown of every lease restores the full cluster.
    let mut client = ServiceClient::connect(&addr, Some(Duration::from_secs(10))).unwrap();
    for lease in leases {
        match client.release("teardown", lease).unwrap() {
            Response::Release { .. } => {}
            other => panic!("release failed: {other:?}"),
        }
    }
    assert_eq!(server.service().inventory().free_nodes(), capacities);

    match client.shutdown("bye").unwrap() {
        Response::Shutdown { .. } => {}
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    server.join();
}

#[test]
fn zero_deadline_expires_in_queue() {
    let server = MappingServer::bind(service(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut client = ServiceClient::connect(&addr, Some(Duration::from_secs(10))).unwrap();
    let req = MapRequest {
        deadline_ms: Some(0),
        ..MapRequest::new("hurry", pattern_csv(16))
    };
    match client.map(req).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::DeadlineExceeded),
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    server.join();
}

#[test]
fn full_admission_queue_pushes_back_immediately() {
    let config = ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServiceConfig::default()
    };
    let server = MappingServer::bind(MappingService::new(network(), config), "127.0.0.1:0")
        .expect("bind loopback");
    let addr = server.local_addr().to_string();

    // The single worker pops this connection and blocks reading it.
    let parked = ServiceClient::connect(&addr, Some(Duration::from_secs(10))).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // This one fills the queue's single slot.
    let queued = ServiceClient::connect(&addr, Some(Duration::from_secs(10))).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // And this one must be bounced straight from the accept thread.
    let mut bounced = ServiceClient::connect(&addr, Some(Duration::from_secs(10))).unwrap();
    match bounced.map(MapRequest::new("late", pattern_csv(16))) {
        Ok(Response::Error(e)) => assert_eq!(e.code, ErrorCode::OverCapacity),
        // The server may close before our request line is even read;
        // either way the caller sees a failure, never a hang.
        Ok(other) => panic!("expected over_capacity, got {other:?}"),
        Err(msg) => assert!(msg.contains("closed") || msg.contains("response")),
    }

    // Freeing the parked connection lets the queued one be served.
    drop(parked);
    let mut queued = queued;
    match queued.map(MapRequest::new("q", pattern_csv(16))).unwrap() {
        Response::Map(_) => {}
        other => panic!("queued request should succeed, got {other:?}"),
    }
    server.join();
}

#[test]
fn graceful_shutdown_refuses_new_connections() {
    let server = MappingServer::bind(service(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut client = ServiceClient::connect(&addr, Some(Duration::from_secs(10))).unwrap();
    match client.shutdown("drain").unwrap() {
        Response::Shutdown { draining, .. } => assert_eq!(draining, 0),
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    server.join();
    // The listener is gone: a fresh connection attempt must fail fast.
    assert!(ServiceClient::connect(&addr, Some(Duration::from_millis(500))).is_err());
}

/// Regression (the unbounded-read bug): a client streaming 10 MB of
/// garbage with no `\n` must get one clean `bad_request` naming the
/// byte bound — never an unbounded buffer or a hung worker — and the
/// daemon must stay healthy for the next client.
#[test]
fn ten_megabytes_without_a_newline_is_a_clean_bad_request() {
    use geomap_service::server::MAX_LINE_BYTES;
    use std::io::{BufRead, BufReader, Write};

    let server = MappingServer::bind(service(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();

    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Write from a second thread: the server responds as soon as the
    // bound trips (4 MiB in), then drains the rest, so neither side can
    // deadlock on full socket buffers.
    let writer = {
        let mut tx = stream.try_clone().expect("clone stream");
        std::thread::spawn(move || {
            let chunk = vec![b'x'; 64 * 1024];
            for _ in 0..160 {
                // 10 MiB total, no newline anywhere.
                if tx.write_all(&chunk).is_err() {
                    break; // server already closed: also acceptable
                }
            }
            let _ = tx.flush();
        })
    };

    let mut line = String::new();
    BufReader::new(&stream).read_line(&mut line).expect("read");
    let resp = Response::from_line(&line).expect("decodable error response");
    match resp {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::BadRequest);
            assert!(
                e.message.contains(&MAX_LINE_BYTES.to_string()),
                "error must name the bound: {e:?}"
            );
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    writer.join().expect("writer thread");
    drop(stream);

    // The daemon survived: a well-formed request still round-trips.
    let mut client = ServiceClient::connect(&addr, Some(Duration::from_secs(10))).unwrap();
    match client
        .map(MapRequest::new("after", pattern_csv(16)))
        .unwrap()
    {
        Response::Map(_) => {}
        other => panic!("daemon unhealthy after garbage: {other:?}"),
    }
    match client.shutdown("bye").unwrap() {
        Response::Shutdown { .. } => {}
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    server.join();
}

/// The retrying client against a dead address: every attempt fails to
/// connect (safely retryable), the budget runs out, and the caller gets
/// a typed retryable error counting the attempts — never a hang.
#[test]
fn retrying_client_exhausts_its_budget_against_a_dead_port() {
    // Bind-then-drop: the OS hands us a port that is now guaranteed
    // closed, so connects are refused immediately.
    let addr = {
        let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        sock.local_addr().unwrap().to_string()
    };
    let policy = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        ..RetryPolicy::default()
    };
    let mut client = RetryingClient::new(
        TcpConnector::new(&addr, Some(Duration::from_millis(200))),
        policy,
    );
    match client.map(MapRequest::new("dead", pattern_csv(4))) {
        Err(ClientError::Retryable { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected retryable exhaustion, got {other:?}"),
    }
}
