//! Cross-version wire compatibility for the PR 8 observability
//! extensions.
//!
//! The trace context (v2 map payload) and the stats detail flag are
//! *trailing, opt-in* extensions. Two guarantees keep old and new
//! peers interoperable:
//!
//! * **old client → new server**: bytes produced by the pre-extension
//!   encoders — hand-built here, field by field, against the frozen
//!   PR 7 layout — must decode on today's code, with the new fields at
//!   their defaults (`trace: None`, `detail: false`), and must be
//!   served end-to-end by a live daemon.
//! * **new client → old server**: a new client that doesn't opt in
//!   must emit bytes an old decoder accepts. Encoders can't be run
//!   against old code, so the test pins the equivalent claim: the
//!   default-encoded bytes are identical to the hand-built PR 7 bytes,
//!   and the opted-in encodings differ only by a strictly trailing
//!   suffix.

use geomap_service::frame::{self, Frame, FrameKind};
use geomap_service::proto::{MapRequest, Request, Response, TraceContext};
use geomap_service::{MappingServer, MappingService, ServiceConfig};
use geonet::{presets, InstanceType};
use std::io::{Read, Write};
use std::time::Duration;

/// PR 7 v2 payload for `Stats { id }`: tag 3 + length-prefixed id,
/// nothing else.
fn pr7_stats_payload(id: &str) -> Vec<u8> {
    let mut p = vec![3u8];
    p.extend_from_slice(&(id.len() as u32).to_le_bytes());
    p.extend_from_slice(id.as_bytes());
    p
}

/// PR 7 v2 payload for a minimal map request: every field in the
/// frozen order, no trailing trace extension.
fn pr7_map_payload(m: &MapRequest) -> Vec<u8> {
    assert!(m.trace.is_none(), "PR 7 payloads have no trace field");
    let mut p = vec![1u8];
    let put_str = |p: &mut Vec<u8>, s: &str| {
        p.extend_from_slice(&(s.len() as u32).to_le_bytes());
        p.extend_from_slice(s.as_bytes());
    };
    let put_opt_u64 = |p: &mut Vec<u8>, x: Option<u64>| match x {
        Some(v) => {
            p.push(1);
            p.extend_from_slice(&v.to_le_bytes());
        }
        None => p.push(0),
    };
    put_str(&mut p, &m.id);
    put_str(&mut p, &m.pattern_csv);
    put_opt_u64(&mut p, m.ranks.map(|r| r as u64));
    match &m.constraints_csv {
        Some(c) => {
            p.push(1);
            put_str(&mut p, c);
        }
        None => p.push(0),
    }
    put_str(&mut p, &m.algorithm);
    p.extend_from_slice(&m.seed.to_le_bytes());
    p.extend_from_slice(&(m.kappa as u64).to_le_bytes());
    p.extend_from_slice(&(m.samples as u64).to_le_bytes());
    p.extend_from_slice(&(m.calibration.days as u64).to_le_bytes());
    p.extend_from_slice(&(m.calibration.probes_per_day as u64).to_le_bytes());
    p.extend_from_slice(&m.calibration.noise_cv.to_bits().to_le_bytes());
    p.extend_from_slice(&m.calibration.loss_rate.to_bits().to_le_bytes());
    p.extend_from_slice(&m.calibration.seed.to_le_bytes());
    put_opt_u64(&mut p, m.deadline_ms);
    p.push(u8::from(m.reserve));
    put_opt_u64(&mut p, m.lease_ttl_ms);
    p.push(u8::from(m.use_result_cache));
    match &m.idempotency_key {
        Some(k) => {
            p.push(1);
            put_str(&mut p, k);
        }
        None => p.push(0),
    }
    p
}

fn minimal_map() -> MapRequest {
    MapRequest::new("compat", "src,dst,bytes,msgs\n0,1,5,2\n1,0,7,3\n")
}

/// Old-client bytes decode on the new code with the extensions at
/// their defaults; new-client default bytes are identical to them.
#[test]
fn pr7_payloads_decode_and_default_encodings_match_them() {
    // Stats: old shape ⇒ detail: false, and vice versa.
    let old = pr7_stats_payload("st");
    let decoded = frame::decode_request_payload(&old).expect("old stats decodes");
    assert_eq!(
        decoded,
        Request::Stats {
            id: "st".into(),
            detail: false
        }
    );
    assert_eq!(frame::request_payload(&decoded), old, "stats bytes drifted");

    // Map: old shape ⇒ trace: None, and vice versa.
    let m = minimal_map();
    let old = pr7_map_payload(&m);
    let decoded = frame::decode_request_payload(&old).expect("old map decodes");
    assert_eq!(decoded, Request::Map(m.clone()));
    assert_eq!(frame::request_payload(&decoded), old, "map bytes drifted");
}

/// The opted-in encodings append strictly trailing bytes — the shared
/// prefix is the exact PR 7 payload, so the extension can never shift
/// a field an old peer reads.
#[test]
fn extensions_are_strictly_trailing() {
    let detailed = frame::request_payload(&Request::Stats {
        id: "st".into(),
        detail: true,
    });
    let plain = pr7_stats_payload("st");
    assert_eq!(&detailed[..plain.len()], &plain[..]);
    assert_eq!(detailed.len(), plain.len() + 1, "detail flag is one bool");

    let mut traced = minimal_map();
    traced.trace = Some(TraceContext {
        trace_id: 0xABCDE,
        parent_span: 7,
        sampled: true,
    });
    let traced_bytes = frame::request_payload(&Request::Map(traced));
    let plain_bytes = pr7_map_payload(&minimal_map());
    assert_eq!(&traced_bytes[..plain_bytes.len()], &plain_bytes[..]);
    assert_eq!(
        traced_bytes.len(),
        plain_bytes.len() + 1 + 8 + 8 + 1,
        "trace extension is marker + trace id + parent span + sampled"
    );
}

/// v1 JSON: a PR 7-shape line (no `trace`, no `detail` keys) parses
/// with the defaults, and a non-opted-in request emits no such keys.
#[test]
fn v1_lines_stay_compatible() {
    let old_line = r#"{"v":1,"kind":"stats","id":"st"}"#;
    let decoded = Request::from_line(old_line).expect("old v1 stats parses");
    assert_eq!(
        decoded,
        Request::Stats {
            id: "st".into(),
            detail: false
        }
    );
    assert!(!decoded.to_line().contains("detail"));

    let map_line = Request::Map(minimal_map()).to_line();
    assert!(!map_line.contains("trace"), "untraced map leaked a key");
    assert_eq!(
        Request::from_line(&map_line).expect("own line parses"),
        Request::Map(minimal_map())
    );
}

/// End-to-end: a live daemon serves raw hand-built PR 7 frames — an
/// actual old client on the socket, not just the payload codec.
#[test]
fn old_client_round_trips_against_a_live_daemon() {
    let service = MappingService::new(
        presets::paper_ec2_network(4, InstanceType::M4Xlarge, 42),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let server = MappingServer::bind(service, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let exchange = |payload: Vec<u8>, corr: u64| -> Response {
        let frame = Frame {
            kind: FrameKind::Request,
            corr_id: corr,
            payload,
        };
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        stream.write_all(&frame.encode()).expect("write");
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            let n = stream.read(&mut chunk).expect("read");
            assert!(n > 0, "daemon closed before answering");
            buf.extend_from_slice(&chunk[..n]);
            match Frame::decode(&buf) {
                Ok((f, _)) => {
                    assert_eq!(f.corr_id, corr);
                    return frame::decode_response_payload(&f.payload).expect("response decodes");
                }
                Err(frame::FrameError::Truncated { .. }) => continue,
                Err(e) => panic!("bad response frame: {e:?}"),
            }
        }
    };

    match exchange(pr7_map_payload(&minimal_map()), 1) {
        Response::Map(m) => assert_eq!(m.id, "compat"),
        other => panic!("old-shape map got {other:?}"),
    }
    // An old stats response must come back without the detail section
    // (the flag was never sent), in the old byte layout.
    match exchange(pr7_stats_payload("st"), 2) {
        Response::Stats(s) => {
            assert_eq!(s.served, 1);
            assert!(s.detail.is_none(), "unrequested detail leaked");
        }
        other => panic!("old-shape stats got {other:?}"),
    }

    let mut bye = geomap_service::ServiceClient::connect(&addr.to_string(), None).expect("client");
    bye.shutdown("bye").expect("shutdown");
    server.join();
}
