//! Schema stability for the wire protocol's domain types: serialize →
//! deserialize must reproduce a result whose Eq. 3 cost is
//! bit-identical to the original's.

use commgraph::apps::AppKind;
use geomap_core::pipeline::{self, PipelineConfig};
use geomap_core::{cost, ConstraintVector, Mapping};
use geomap_service::json::Json;
use geomap_service::wire;
use geonet::{presets, InstanceType, SiteId};

/// The vendored serde exposes `Serialize`/`Deserialize` as marker
/// traits; the protocol's domain types must declare them so schema
/// participation is visible in the type system.
fn declares_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

#[test]
fn domain_types_declare_serde() {
    declares_serde::<Mapping>();
    declares_serde::<pipeline::PipelineResult>();
    declares_serde::<geonet::Site>();
    declares_serde::<geonet::SiteId>();
    declares_serde::<geonet::GeoCoord>();
    declares_serde::<geonet::SquareMatrix>();
    declares_serde::<geonet::SiteNetwork>();
    declares_serde::<geonet::CalibrationReport>();
    declares_serde::<geomap_service::MapRequest>();
    declares_serde::<geomap_service::Request>();
    declares_serde::<geomap_service::Response>();
}

#[test]
fn pipeline_result_roundtrips_with_bit_identical_cost() {
    let truth = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 7);
    let program = AppKind::parse("sp").unwrap().workload(16).program();
    let mut constraints = ConstraintVector::none(16);
    constraints.pin(0, SiteId(1));
    constraints.pin(7, SiteId(3));
    let result = pipeline::run(&program, &truth, constraints, &PipelineConfig::default());

    let line = wire::pipeline_result_to_json(&result).emit();
    let back = wire::pipeline_result_from_json(&Json::parse(&line).expect("own output parses"))
        .expect("own output deserializes");

    assert_eq!(back.pattern, result.pattern);
    assert_eq!(back.mapping, result.mapping);
    assert_eq!(
        back.compression_ratio.to_bits(),
        result.compression_ratio.to_bits()
    );
    assert_eq!(
        back.estimated_cost.to_bits(),
        result.estimated_cost.to_bits(),
        "stored cost drifted through the wire"
    );

    // The decisive check: the *recomputed* Eq. 3 cost on the
    // reassembled problem matches the original bits, so nothing about
    // the problem (matrices, partner lists, constraints) was perturbed
    // by the round trip.
    assert_eq!(
        cost(&back.problem, &back.mapping).to_bits(),
        result.estimated_cost.to_bits(),
        "recomputed cost drifted through the wire"
    );

    // And a second trip is textually identical (stable encoding).
    assert_eq!(wire::pipeline_result_to_json(&back).emit(), line);
}

#[test]
fn calibration_report_survives_the_wire_exactly() {
    let truth = presets::paper_ec2_network(4, InstanceType::M4Xlarge, 9);
    let report = geonet::Calibrator::new(geonet::CalibrationConfig::default()).calibrate(&truth);
    let line = wire::calibration_to_json(&report).emit();
    let back = wire::calibration_from_json(&Json::parse(&line).unwrap()).unwrap();
    assert_eq!(back.estimated, report.estimated);
    assert_eq!(back.probes, report.probes);
    // CV matrix entry-for-entry, bitwise.
    let m = report.estimated.num_sites();
    for i in 0..m {
        for j in 0..m {
            assert_eq!(
                back.bandwidth_cv.get(i, j).to_bits(),
                report.bandwidth_cv.get(i, j).to_bits()
            );
        }
    }
}
