//! Multilevel solves through the daemon: a large-N request over both
//! wire formats (v1 JSON and v2 binary) must produce the same feasible
//! mapping, and the multilevel knobs must be part of the result-cache
//! identity — the same pattern solved direct and multilevel, or with
//! different knobs, must never share a cache entry (the collision this
//! guards against returned a direct-solver mapping to a multilevel
//! caller before the fingerprint carried the spec).

use commgraph::apps::{AppKind, ClusteredGraph, Workload};
use geomap_service::proto::{CacheTier, MultilevelSpec, Response};
use geomap_service::wire::WireFormat;
use geomap_service::{
    MapRequest, MappingServer, MappingService, Request, ServiceClient, ServiceConfig,
};
use geonet::{presets, InstanceType, SiteNetwork};
use std::time::Duration;

/// Four paper regions with enough nodes for the large-N run.
fn network(nodes_per_region: usize) -> SiteNetwork {
    presets::paper_ec2_network(nodes_per_region, InstanceType::M4Xlarge, 42)
}

fn ml_request(id: &str, csv: String, ranks: usize, spec: MultilevelSpec) -> MapRequest {
    MapRequest {
        ranks: Some(ranks),
        algorithm: "multilevel".into(),
        multilevel: Some(spec),
        ..MapRequest::new(id, csv)
    }
}

/// A 2048-rank clustered pattern mapped by the multilevel solver,
/// submitted once over each wire format against one daemon. Both
/// responses must decode, agree bit-for-bit, and describe a feasible
/// placement (every rank mapped, no site over its capacity).
#[test]
fn large_multilevel_request_over_both_wires_is_feasible_and_identical() {
    let n = 2048usize;
    let net = network(n / 4 + 8);
    let caps = net.capacities();
    let server = MappingServer::bind(
        MappingService::new(net, ServiceConfig::default()),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let csv = ClusteredGraph {
        n,
        cluster: 64,
        degree: 8,
        locality: 0.8,
        max_bytes: 1 << 20,
        seed: 9,
    }
    .pattern()
    .to_csv();
    let spec = MultilevelSpec {
        coarsen_cutoff: 256,
        match_rounds: 2,
        refine_passes: 1,
    };

    let mut responses = Vec::new();
    for (wire, id) in [
        (WireFormat::V1Json, "ml-v1"),
        (WireFormat::V2Binary, "ml-v2"),
    ] {
        let mut client = ServiceClient::connect_with(&addr, Some(Duration::from_secs(300)), wire)
            .expect("connect loopback");
        let resp = client
            .map(ml_request(id, csv.clone(), n, spec))
            .expect("wire round-trip");
        let Response::Map(resp) = resp else {
            panic!("{id}: expected a map response, got {resp:?}");
        };
        assert_eq!(resp.id, id);
        assert_eq!(resp.mapping.len(), n, "{id}: every rank must be placed");
        let mut counts = vec![0usize; caps.len()];
        for &site in &resp.mapping {
            assert!(site < caps.len(), "{id}: site {site} out of range");
            counts[site] += 1;
        }
        for (site, (&used, &cap)) in counts.iter().zip(&caps).enumerate() {
            assert!(
                used <= cap,
                "{id}: site {site} holds {used} ranks over capacity {cap}"
            );
        }
        assert!(
            resp.cost.is_finite() && resp.cost > 0.0,
            "{id}: cost {}",
            resp.cost
        );
        responses.push(resp);
    }

    // The v2 request is byte-for-byte the same problem: it must hit the
    // result cache (proving the v2 multilevel extension decodes to the
    // identical spec) and replay the v1 mapping exactly.
    assert_eq!(responses[0].cached, CacheTier::Miss);
    assert_eq!(responses[1].cached, CacheTier::Result);
    assert_eq!(responses[0].mapping, responses[1].mapping);
    assert_eq!(responses[0].cost.to_bits(), responses[1].cost.to_bits());
    server.stop();
    server.join();
}

/// Regression test for the fingerprint collision: before the result key
/// carried the multilevel spec, `algorithm = "multilevel"` requests with
/// different knobs collided, and a direct-then-multilevel pair differed
/// only in the algorithm string. All four identities below must stay
/// distinct in the result tier while still sharing the problem tier.
#[test]
fn multilevel_spec_is_part_of_the_result_cache_identity() {
    let svc = MappingService::new(network(4), ServiceConfig::default());
    let csv = AppKind::parse("sp")
        .unwrap()
        .workload(16)
        .pattern()
        .to_csv();
    let base = MapRequest::new("direct", csv.clone());

    let Response::Map(direct) = svc.handle(&Request::Map(base.clone())) else {
        panic!("direct solve failed");
    };
    assert_eq!(direct.cached, CacheTier::Miss);

    // Same pattern, same seed, multilevel solver: shares the parsed
    // problem + calibration, must NOT replay the direct mapping.
    let spec8 = MultilevelSpec {
        coarsen_cutoff: 8,
        match_rounds: 2,
        refine_passes: 2,
    };
    let Response::Map(ml8) = svc.handle(&Request::Map(MapRequest {
        id: "ml8".into(),
        algorithm: "multilevel".into(),
        multilevel: Some(spec8),
        ..base.clone()
    })) else {
        panic!("multilevel solve failed");
    };
    assert_eq!(
        ml8.cached,
        CacheTier::Problem,
        "a multilevel request must reuse the problem tier but never the direct result"
    );

    // Different knobs, same algorithm string: a fresh result entry.
    let Response::Map(ml4) = svc.handle(&Request::Map(MapRequest {
        id: "ml4".into(),
        algorithm: "multilevel".into(),
        multilevel: Some(MultilevelSpec {
            coarsen_cutoff: 4,
            ..spec8
        }),
        ..base.clone()
    })) else {
        panic!("re-knobbed solve failed");
    };
    assert_eq!(
        ml4.cached,
        CacheTier::Problem,
        "changing the coarsening cutoff must change the result key"
    );

    // Exact replays of each identity do hit their own entries.
    for (id, algorithm, ml, want) in [
        ("direct2", "geo", None, &direct.mapping),
        ("ml8b", "multilevel", Some(spec8), &ml8.mapping),
    ] {
        let Response::Map(again) = svc.handle(&Request::Map(MapRequest {
            id: id.into(),
            algorithm: algorithm.into(),
            multilevel: ml,
            ..base.clone()
        })) else {
            panic!("{id} failed");
        };
        assert_eq!(
            again.cached,
            CacheTier::Result,
            "{id} must replay its entry"
        );
        assert_eq!(&again.mapping, want, "{id} replayed the wrong mapping");
    }
}
