//! Property tests for the v2 binary frame layer.
//!
//! The decoder faces the network (any peer can hand the daemon
//! arbitrary bytes), so the properties are adversarial: arbitrary bytes
//! never panic it, truncation at *every* byte offset is a typed
//! `Truncated` error, hostile declared lengths are `Oversized` before a
//! single payload byte is buffered, and everything the encoder produces
//! decodes back bit-identically — payload codec included.
//!
//! Case counts honor the `FRAME_PROPTEST_CASES` environment variable
//! (falling back to `JSON_PROPTEST_CASES` so CI's reduced sweeps tune
//! both layers with one knob); the vendored proptest has no shrinking
//! but seeds deterministically per test, so any failure reproduces
//! exactly on re-run.

use geomap_service::frame::{
    self, Frame, FrameError, FrameKind, FRAME_HEADER_BYTES, FRAME_MAGIC, FRAME_VERSION,
    MAX_FRAME_BYTES,
};
use geomap_service::proto::{
    CacheTier, CalibSpec, ErrorCode, ErrorResponse, MapRequest, MapResponse, Request, Response,
    StatsResponse,
};
use geomap_service::wire::WireFormat;
use proptest::prelude::*;

/// Case count, overridable via `FRAME_PROPTEST_CASES` (CI smoke runs);
/// `JSON_PROPTEST_CASES` works too so one knob tunes every sweep.
fn cases(default: u32) -> u32 {
    ["FRAME_PROPTEST_CASES", "JSON_PROPTEST_CASES"]
        .iter()
        .find_map(|var| std::env::var(var).ok()?.parse().ok())
        .unwrap_or(default)
}

/// A generated map request exercising every field (the same shape the
/// JSON property sweep uses, so both protocols face the same corpus).
#[allow(clippy::too_many_arguments)]
fn build_map_request(
    seed: u64,
    ranks: usize,
    kappa: usize,
    samples: usize,
    noise: f64,
    loss: f64,
    bits: u32,
    deadline: u64,
    ttl: u64,
) -> MapRequest {
    let mut m = MapRequest::new(
        format!("id-{seed}-é\u{1F30D}"),
        "src,dst,bytes,msgs\n0,1,5,2\n",
    );
    m.ranks = (ranks > 0).then_some(ranks);
    m.constraints_csv = (bits & 1 != 0).then(|| "process,site\n0,1\n".to_string());
    m.algorithm = ["geo", "greedy", "mpipp", "random"][(seed % 4) as usize].into();
    m.seed = seed;
    m.kappa = kappa;
    m.samples = samples;
    m.calibration = CalibSpec {
        days: 1 + (seed % 9) as usize,
        probes_per_day: 1 + (seed % 17) as usize,
        noise_cv: noise,
        loss_rate: loss,
        seed,
    };
    m.deadline_ms = (bits & 2 != 0).then_some(deadline);
    m.reserve = bits & 4 != 0;
    m.lease_ttl_ms = (bits & 2 != 0).then_some(ttl);
    m.use_result_cache = bits & 1 == 0;
    m.idempotency_key = (bits & 4 != 0).then(|| format!("key-{seed}\"\\\u{0}"));
    // The optional trace extension (PR 8): absent on half the corpus,
    // so the sweep covers both the bare and the extended encodings.
    m.trace = (bits & 8 != 0).then(|| geomap_service::TraceContext {
        trace_id: seed & ((1 << 53) - 1),
        parent_span: seed.rotate_left(17),
        sampled: bits & 1 == 0,
    });
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    /// Arbitrary bytes never panic the frame decoder — they decode or
    /// they return a typed error.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let _ = Frame::decode(&bytes);
        let _ = Frame::peek_corr_id(&bytes);
    }

    /// Frame-flavored noise — a valid header prefix followed by
    /// arbitrary bytes — exercises the payload codecs, which must also
    /// never panic: a structurally valid frame with garbage inside is a
    /// typed error, not a crash or a runaway allocation.
    #[test]
    fn garbage_payloads_are_typed_errors_not_panics(
        payload in prop::collection::vec(0u8..=255, 0..128),
        kind in 1u8..=2,
        corr in 0u64..u64::MAX,
    ) {
        let frame = Frame {
            kind: FrameKind::from_code(kind).unwrap(),
            corr_id: corr,
            payload: payload.clone(),
        };
        let wire = frame.encode();
        let (back, used) = Frame::decode(&wire).expect("own encoding decodes");
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(&back.payload, &payload);
        // The payload codecs on top face the same garbage.
        let _ = frame::decode_request_payload(&payload);
        let _ = frame::decode_response_payload(&payload);
        let _ = WireFormat::decode_response(&wire);
    }

    /// Every proper prefix of a valid frame is `Truncated` (with an
    /// honest byte count), never a panic, never a bogus success.
    #[test]
    fn truncation_at_any_offset_is_a_truncated_error(
        payload in prop::collection::vec(0u8..=255, 0..64),
        cut_seed in 0usize..4096,
    ) {
        let frame = Frame {
            kind: FrameKind::Request,
            corr_id: 7,
            payload,
        };
        let wire = frame.encode();
        let cut = cut_seed % wire.len(); // proper prefix: 0..len-1
        match Frame::decode(&wire[..cut]) {
            Err(FrameError::Truncated { have, need }) => {
                prop_assert_eq!(have, cut);
                prop_assert!(need > have, "need {} must exceed have {}", need, have);
                prop_assert!(need <= wire.len());
            }
            other => prop_assert!(false, "cut at {}: expected Truncated, got {:?}", cut, other),
        }
    }

    /// A declared payload length past `MAX_FRAME_BYTES` — up to the
    /// full u32 range, the length-prefix-overflow case — is refused
    /// from the header alone, before any payload arrives.
    #[test]
    fn hostile_declared_lengths_are_oversized_from_the_header(
        declared in (MAX_FRAME_BYTES as u32 + 1)..=u32::MAX,
        corr in 0u64..u64::MAX,
    ) {
        let mut wire = vec![FRAME_MAGIC, FRAME_VERSION, 1];
        wire.extend_from_slice(&corr.to_le_bytes());
        wire.extend_from_slice(&declared.to_le_bytes());
        prop_assert_eq!(wire.len(), FRAME_HEADER_BYTES);
        match Frame::decode(&wire) {
            Err(FrameError::Oversized { len }) => prop_assert_eq!(len, declared as usize),
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Requests with arbitrary (valid-range) field values survive the
    /// binary payload codec bit-for-bit — the same corpus shape the v1
    /// JSON sweep uses.
    #[test]
    fn map_requests_roundtrip_through_frames(
        seed in 0u64..u64::MAX,
        ranks in 0usize..512,
        kappa in 1usize..64,
        samples in 1usize..100_000,
        rates in (0.0f64..1.0, 0.0f64..0.999),
        flags in (0u32..16, 0u64..(1 << 62), 0u64..(1 << 62), 0u64..u64::MAX),
    ) {
        let (noise, loss) = rates;
        let (bits, deadline, ttl, corr) = flags;
        let m = build_map_request(seed, ranks, kappa, samples, noise, loss, bits, deadline, ttl);
        let req = Request::Map(m);
        let wire = frame::encode_request(&req, corr);
        let (f, used) = Frame::decode(&wire).expect("own frame decodes");
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(f.kind, FrameKind::Request);
        prop_assert_eq!(f.corr_id, corr);
        let back = frame::decode_request_payload(&f.payload);
        prop_assert!(back.is_ok(), "own request failed to decode: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), req);
    }

    /// The non-map request kinds roundtrip too (strings with every
    /// awkward character frames must carry transparently).
    #[test]
    fn control_requests_roundtrip_through_frames(
        lease in 0u64..u64::MAX,
        pick in 0usize..4,
        tail_bytes in prop::collection::vec(0u8..127, 0..24),
    ) {
        let tail = String::from_utf8_lossy(&tail_bytes);
        let id = format!("id-\u{1F30D}-{tail}");
        let req = match pick {
            0 => Request::Release { id, lease },
            1 => Request::Stats {
                id,
                detail: lease % 2 == 0,
            },
            2 => Request::TraceDump { id },
            _ => Request::Shutdown { id },
        };
        let wire = frame::encode_request(&req, lease);
        let (f, _) = Frame::decode(&wire).expect("own frame decodes");
        prop_assert_eq!(frame::decode_request_payload(&f.payload).unwrap(), req);
    }

    /// Every response kind survives the frame codec with generated
    /// payloads, including bit-exact floats, and the sniffing
    /// `WireFormat::decode_response` agrees with the direct decode.
    #[test]
    fn responses_roundtrip_through_frames(
        cost in -1.0e12f64..1.0e12,
        lease in 0u64..u64::MAX,
        counts in prop::collection::vec(0usize..(1 << 30), 1..6),
        served in 0u64..u64::MAX,
        staleness in 0u64..u64::MAX,
        meta in (0usize..5, 0u64..u64::MAX),
    ) {
        let (pick, corr) = meta;
        let response = match pick {
            0 => Response::Map(MapResponse {
                id: "p-é".into(),
                mapping: counts.clone(),
                cost,
                cached: [CacheTier::Miss, CacheTier::Problem, CacheTier::Result]
                    [(lease % 3) as usize],
                queue_wait_s: cost.abs() / 1e6,
                solve_s: cost * 3.0,
                lease: (lease % 2 == 0).then_some(lease),
                site_counts: counts.clone(),
                free_nodes: counts.clone(),
                degraded: staleness > 0,
                staleness,
            }),
            1 => Response::Release {
                id: "r".into(),
                freed: counts.clone(),
                free_nodes: counts.clone(),
            },
            2 => Response::Stats(StatsResponse {
                id: "s".into(),
                served,
                result_hits: served / 2,
                problem_hits: served / 3,
                misses: served / 5,
                rejected: served / 7,
                replays: served / 11,
                free_nodes: counts.clone(),
                active_leases: lease % 100,
                detail: None,
            }),
            3 => Response::Shutdown {
                id: "q".into(),
                draining: served,
            },
            _ => Response::Error(ErrorResponse {
                id: "e".into(),
                code: [
                    ErrorCode::BadRequest,
                    ErrorCode::OverCapacity,
                    ErrorCode::Retryable,
                    ErrorCode::Degraded,
                ][(lease % 4) as usize],
                message: format!("m\"\\\u{0}{cost}"),
            }),
        };
        let wire = frame::encode_response(&response, corr);
        let (f, _) = Frame::decode(&wire).expect("own frame decodes");
        prop_assert_eq!(f.kind, FrameKind::Response);
        prop_assert_eq!(
            frame::decode_response_payload(&f.payload).expect("payload decodes"),
            response.clone()
        );
        let (sniffed_corr, sniffed) =
            WireFormat::decode_response(&wire).expect("sniffing decode");
        prop_assert_eq!(sniffed_corr, corr);
        prop_assert_eq!(sniffed, response);
    }
}

/// `peek_corr_id` agrees with the full decode on every valid frame and
/// never invents an id for bytes that aren't one.
#[test]
fn peek_corr_id_matches_decode() {
    for corr in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
        let wire = frame::encode_request(
            &Request::Stats {
                id: "x".into(),
                detail: false,
            },
            corr,
        );
        assert_eq!(Frame::peek_corr_id(&wire), Some(corr));
        assert_eq!(Frame::peek_corr_id(&wire[..FRAME_HEADER_BYTES - 1]), None);
    }
    assert_eq!(Frame::peek_corr_id(b"{\"v\":1}"), None);
    assert_eq!(Frame::peek_corr_id(&[]), None);
}
