//! The `geomap` command-line workflow.
//!
//! Mirrors the paper artifact's usage ("run scripts to obtain the
//! process mapping solution to the tested application") as one binary
//! with file-based interchange — every stage reads and writes plain CSV
//! so users can substitute their own measurements at any point:
//!
//! ```text
//! geomap network    --provider ec2 --nodes 16 --out truth.csv
//! geomap calibrate  --network truth.csv --days 3 --out measured.csv
//! geomap profile    --app lu --ranks 64 --out pattern.csv
//! geomap map        --network measured.csv --pattern pattern.csv \
//!                   --algorithm geo --out mapping.csv
//! geomap evaluate   --network truth.csv --pattern pattern.csv \
//!                   --mapping mapping.csv [--simulate --app lu]
//! ```
//!
//! Every command is a pure function from parsed arguments to output
//! text, so the whole surface is unit-testable without spawning
//! processes; the `geomap` binary is a thin wrapper.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod files;
pub mod observe_cmd;
pub mod service_cmd;

use args::Args;

/// Top-level dispatch: returns the command's stdout text or a
/// user-facing error.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(usage());
    };
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "network" => commands::network(&args),
        "calibrate" => commands::calibrate(&args),
        "profile" => commands::profile(&args),
        "map" => commands::map(&args),
        "trace" => commands::trace(&args),
        "evaluate" => commands::evaluate(&args),
        "serve" => service_cmd::serve(&args),
        "request" => service_cmd::request(&args),
        "federate" => service_cmd::federate(&args),
        "churn" => service_cmd::churn(&args),
        "stats" => observe_cmd::stats(&args),
        "observe" => observe_cmd::observe(&args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    "geomap — geo-distributed process mapping (SC'17 reproduction)

commands:
  network   --provider ec2|azure|multicloud [--regions a,b,..] [--nodes N]
            [--instance TYPE] [--seed S] [--out FILE]
            synthesize a ground-truth network and write it as CSV
  calibrate --network FILE [--days D] [--probes P] [--noise CV] [--seed S]
            [--out FILE]
            probe a network SKaMPI-style and write the measured estimate
  profile   --app bt|sp|lu|kmeans|dnn --ranks N [--out FILE] [--heatmap]
            generate and profile a workload (CG/AG edge list)
  map       --network FILE --pattern FILE [--ranks N]
            [--algorithm geo|greedy|mpipp|random|montecarlo]
            [--constraints FILE] [--kappa K] [--seed S] [--out FILE]
            compute a process mapping
  trace     --network FILE --pattern FILE [--ranks N]
            [--algorithm geo|greedy|mpipp|random|montecarlo]
            [--constraints FILE] [--app NAME] [--events N] [--seed S]
            [--out FILE]
            map with event tracing on — plus, with --app, a traced replay
            on the simulated runtime — and emit Chrome trace-event JSON
            (Perfetto / chrome://tracing)
  evaluate  --network FILE --pattern FILE --mapping FILE [--ranks N]
            [--simulate --app NAME] [--baseline-samples K] [--seed S]
            report Eq.3 cost (and simulated makespan) vs random baseline
  serve     --network FILE [--addr HOST:PORT] [--addr-file FILE]
            [--workers N] [--queue N] [--problem-cache N] [--result-cache N]
            [--idem-cache N] [--deadline-ms T] [--lease-ttl-ms T]
            [--metrics FILE] [--trace FILE] [--trace-ring CAP]
            run the mapping daemon (JSON-lines over TCP) until a client
            sends shutdown; drains the queue, then exits 0
  federate  --network FILE [--shards N] [--requests K] [--ranks R]
            [--pool P] [--timeout-ms T]
            run an N-daemon federation on loopback: prime K problems
            through the pooled router, repeat them to measure shard
            cache affinity, reserve/release keyed leases through the
            reconciling router, and verify every shard's ledger
            returns to full capacity (exits non-zero otherwise)
  churn     --network FILE [--ranks N] [--rounds R] [--budget B] [--alpha A]
            [--seed S] [--timeout-ms T]
            drive a loopback daemon through a seeded drift scenario:
            place a leased application, flip site capacities, let the
            reconciler publish bounded-migration remap diffs (printed
            as JSON lines), and verify budget/cost invariants end-to-end
  stats     --addr HOST:PORT[,HOST:PORT,..] [--prometheus] [--timeout-ms T]
            scatter-gather detailed counters from one or more daemons,
            merge the latency histograms bucket-wise (exact — never
            percentile averaging), and print the merged stats JSON line
            or a Prometheus text exposition; unreachable daemons are
            skipped, and the command exits non-zero when every daemon
            is unreachable
  observe   --network FILE --out TRACE.json [--prom-out FILE] [--shards N]
            [--ranks R] [--requests K] [--ring N] [--timeout-ms T]
            capture a fleet timeline: run an N-daemon loopback
            federation with per-daemon trace rings, drive one traced
            request through the router (trace id propagated over the
            wire), dump every ring via TraceDump, align clocks by
            handshake offset, and merge everything into one
            Chrome/Perfetto trace-event JSON
  request   --addr HOST:PORT (--pattern FILE [--ranks N] [--constraints FILE]
            [--algorithm A] [--seed S] [--kappa K] [--samples K]
            [--calib-days D] [--calib-probes P] [--calib-noise CV]
            [--calib-loss P] [--calib-seed S] [--deadline-ms T] [--reserve]
            [--lease-ttl-ms T] [--no-cache] [--idem KEY] [--out FILE]
            | --stats [--detail] | --trace-dump | --shutdown | --release LEASE)
            [--id ID] [--timeout-ms T] [--retries N] [--backoff-ms T]
            send one request to a running daemon; prints the raw JSON
            response line, exits non-zero on any rejection; --retries
            turns on capped exponential backoff with deterministic jitter
            (reserving maps get an auto idempotency key: a retry after a
            lost response replays the same lease, never a second one)

file formats (all CSV):
  network:     from,to,from_lat,from_lon,from_nodes,latency_s,bandwidth_bps
  pattern:     src,dst,bytes,msgs
  constraints: process,site
  mapping:     process,site
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_args_yields_usage() {
        assert!(run(&[]).unwrap_err().contains("commands:"));
    }

    #[test]
    fn unknown_command_rejected() {
        let argv = vec!["frobnicate".to_string()];
        assert!(run(&argv).unwrap_err().contains("unknown command"));
    }

    #[test]
    fn help_prints_usage() {
        let argv = vec!["help".to_string()];
        assert!(run(&argv).unwrap().contains("geomap —"));
    }
}
