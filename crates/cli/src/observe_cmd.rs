//! The `geomap stats` / `geomap observe` subcommands: fleet-wide
//! observability over running daemons.
//!
//! `stats` scatter-gathers detailed counters from one or more daemons,
//! merges the per-shard latency histograms **bucket-wise** (exact under
//! the shared schema — never percentile averaging), and prints either
//! the merged stats JSON line or a Prometheus text exposition.
//!
//! `observe` is the fleet-timeline collector: it spins up an N-shard
//! loopback federation with per-daemon trace rings, drives a traced
//! request through the reconciling router (client → router → home
//! shard → solver), dumps every daemon's ring over the wire
//! ([`Request::TraceDump`]), aligns the per-daemon clocks via a
//! request/response handshake (each dump reports the daemon's trace
//! clock; the collector brackets it with its own and uses the
//! midpoint offset), and merges everything into one Chrome/Perfetto
//! trace-event JSON where each daemon is its own process group.

use crate::args::Args;
use crate::files;
use geomap_core::{RingBufferSink, Trace};
use geomap_service::federation::merge_stats;
use geomap_service::hist::{bucket_bound, HistKind};
use geomap_service::proto::{Response, StatsResponse, TraceDumpResponse, WireTraceEvent};
use geomap_service::{
    MapRequest, MappingServer, MappingService, RetryPolicy, ServiceClient, ServiceConfig,
    ShardRouter, TcpConnector, TraceContext, WireFormat,
};
use geonet::io as netio;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// `geomap stats` — fetch and merge daemon counters. Unreachable
/// daemons are skipped (noted as a comment in the Prometheus mode);
/// when *every* address is unreachable the command fails with a
/// one-line diagnostic instead of emitting an empty exposition.
pub fn stats(args: &Args) -> Result<String, String> {
    let addrs: Vec<String> = args
        .required("addr")?
        .split(',')
        .map(str::to_string)
        .collect();
    let timeout = Duration::from_millis(args.parsed_or("timeout-ms", 60_000u64)?);
    let mut gathered = Vec::with_capacity(addrs.len());
    let mut unreachable = Vec::new();
    for addr in &addrs {
        match fetch_stats(addr, timeout) {
            Ok(s) => gathered.push(s),
            Err(e) => unreachable.push(format!("{addr}: {e}")),
        }
    }
    if gathered.is_empty() {
        return Err(format!(
            "stats: all {} daemon(s) unreachable — {}",
            addrs.len(),
            unreachable.join("; ")
        ));
    }
    let merged = merge_stats(&gathered);
    if args.switch("prometheus") {
        let mut out = String::new();
        for miss in &unreachable {
            let _ = writeln!(out, "# unreachable: {miss}");
        }
        out.push_str(&prometheus_text(&merged));
        Ok(out)
    } else {
        Ok(format!("{}\n", Response::Stats(merged).to_line()))
    }
}

/// One daemon's detailed stats over a fresh connection.
fn fetch_stats(addr: &str, timeout: Duration) -> Result<StatsResponse, String> {
    let mut client = ServiceClient::connect_with(addr, Some(timeout), WireFormat::V2Binary)?;
    match client.stats_detailed("geomap-stats")? {
        Response::Stats(s) => Ok(s),
        Response::Error(e) => Err(format!("{}: {}", e.code.label(), e.message)),
        other => Err(format!("unexpected stats answer: {other:?}")),
    }
}

/// Render merged stats as a Prometheus text exposition: counters as
/// `counter`, inventory/queue as `gauge`, and every latency histogram
/// both as a cumulative-bucket `histogram` (exact, mergeable upstream)
/// and as `geomap_latency_quantile_seconds` gauges precomputed from
/// the merged buckets.
pub fn prometheus_text(s: &StatsResponse) -> String {
    let mut out = String::new();
    let counters = [
        ("geomap_served_total", s.served),
        ("geomap_result_hits_total", s.result_hits),
        ("geomap_problem_hits_total", s.problem_hits),
        ("geomap_misses_total", s.misses),
        ("geomap_rejected_total", s.rejected),
        ("geomap_replays_total", s.replays),
    ];
    for (name, v) in counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
    }
    let _ = writeln!(
        out,
        "# TYPE geomap_active_leases gauge\ngeomap_active_leases {}",
        s.active_leases
    );
    let _ = writeln!(out, "# TYPE geomap_free_nodes gauge");
    for (site, free) in s.free_nodes.iter().enumerate() {
        let _ = writeln!(out, "geomap_free_nodes{{site=\"{site}\"}} {free}");
    }
    let Some(d) = &s.detail else { return out };
    let _ = writeln!(
        out,
        "# TYPE geomap_queue_depth gauge\ngeomap_queue_depth {}",
        d.queue_depth
    );
    let _ = writeln!(
        out,
        "# TYPE geomap_queue_depth_max gauge\ngeomap_queue_depth_max {}",
        d.max_queue_depth
    );
    let _ = writeln!(
        out,
        "# TYPE geomap_stats_shards gauge\ngeomap_stats_shards {}",
        d.shards
    );
    let _ = writeln!(out, "# TYPE geomap_leased_nodes gauge");
    for (site, leased) in d.leased_nodes.iter().enumerate() {
        let _ = writeln!(out, "geomap_leased_nodes{{site=\"{site}\"}} {leased}");
    }
    let _ = writeln!(out, "# TYPE geomap_latency_seconds histogram");
    let _ = writeln!(out, "# TYPE geomap_latency_quantile_seconds gauge");
    // Kinds with no samples yet are omitted entirely — a lone +Inf
    // bucket with zeroed quantiles is noise, not telemetry.
    for h in d.hists.iter().filter(|h| h.count > 0) {
        let kind = &h.name;
        let mut cumulative = 0u64;
        for &(idx, count) in &h.buckets {
            cumulative += count;
            let le = bucket_bound(idx as usize) as f64 / 1e6;
            let _ = writeln!(
                out,
                "geomap_latency_seconds_bucket{{kind=\"{kind}\",le=\"{le:.6}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "geomap_latency_seconds_bucket{{kind=\"{kind}\",le=\"+Inf\"}} {}",
            h.count
        );
        let _ = writeln!(
            out,
            "geomap_latency_seconds_sum{{kind=\"{kind}\"}} {:.6}",
            h.sum_us as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "geomap_latency_seconds_count{{kind=\"{kind}\"}} {}",
            h.count
        );
        for (q, v) in [
            ("0.5", h.p50_us),
            ("0.9", h.p90_us),
            ("0.99", h.p99_us),
            ("0.999", h.p999_us),
        ] {
            let _ = writeln!(
                out,
                "geomap_latency_quantile_seconds{{kind=\"{kind}\",quantile=\"{q}\"}} {:.6}",
                v as f64 / 1e6
            );
        }
    }
    out
}

/// One collected ring: a daemon's dump plus the clock offset that maps
/// its timestamps onto the collector's timeline.
struct CollectedRing {
    /// Process-group label prefix ("shard0", ..., or "collector").
    label: String,
    dump: TraceDumpResponse,
    /// Seconds to add to every event timestamp.
    offset_s: f64,
}

/// `geomap observe` — capture a fleet timeline from a loopback
/// federation and export one merged Chrome/Perfetto JSON.
pub fn observe(args: &Args) -> Result<String, String> {
    let network_csv = files::read(args.required("network")?)?;
    let out_path = args.required("out")?;
    let shards = args.parsed_or("shards", 3usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let ranks = args.parsed_or("ranks", 8usize)?;
    let warm = args.parsed_or("requests", 4usize)?;
    let ring_cap = args.parsed_or("ring", 65_536usize)?;
    let timeout = Duration::from_millis(args.parsed_or("timeout-ms", 60_000u64)?);

    // One daemon per shard, each tracing into its own ring.
    let mut servers = Vec::with_capacity(shards);
    let mut addrs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let network = netio::from_csv(&network_csv)?;
        let ring = Arc::new(RingBufferSink::new(ring_cap));
        let config = ServiceConfig {
            trace: Trace::new(ring.clone()),
            trace_ring: Some(ring),
            workers: 2,
            ..ServiceConfig::default()
        };
        let server = MappingServer::bind(MappingService::new(network, config), "127.0.0.1:0")
            .map_err(|e| format!("cannot bind observe daemon: {e}"))?;
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }

    // The collector's own ring holds the client and router tracks.
    let local_ring = Arc::new(RingBufferSink::new(ring_cap));
    let local_trace = Trace::new(local_ring.clone());
    let client_track = local_trace.track("client", "client");

    let connectors: Vec<(String, TcpConnector)> = addrs
        .iter()
        .map(|a| {
            (
                a.clone(),
                TcpConnector::new(a, Some(timeout)).with_format(WireFormat::V2Binary),
            )
        })
        .collect();
    let mut router = ShardRouter::new(connectors, RetryPolicy::default());
    router.set_trace(local_trace.clone());

    let pattern_csv = commgraph::apps::AppKind::parse("sp")
        .expect("sp is a known app")
        .workload(ranks)
        .pattern()
        .to_csv();

    // Warm the fleet (untraced): distinct problems fill caches and
    // latency histograms across shards.
    for i in 0..warm {
        let request = MapRequest {
            ranks: Some(ranks),
            seed: 0x0B5E + i as u64,
            ..MapRequest::new(format!("observe-warm-{i}"), pattern_csv.clone())
        };
        let routed = router
            .map(request)
            .map_err(|e| format!("warm map {i}: {e}"))?;
        if let Response::Error(e) = &routed.response {
            return Err(format!(
                "warm map {i} rejected: {}: {}",
                e.code.label(),
                e.message
            ));
        }
    }

    // The traced request: a fresh problem (cache miss, so the solver
    // runs) that reserves (so the inventory span appears), under one
    // sampled trace context that every hop tags.
    let ctx = TraceContext::root(0x0b5e_c0de ^ (shards as u64) << 32 | ranks as u64);
    let request = MapRequest {
        ranks: Some(ranks),
        seed: 0xF1EE7,
        reserve: true,
        trace: Some(ctx),
        ..MapRequest::new("observe-traced", pattern_csv.clone())
    };
    local_trace.span_begin(client_track, "map", local_trace.now());
    #[allow(clippy::cast_precision_loss)] // trace ids are 53-bit
    local_trace.counter(
        client_track,
        "trace",
        local_trace.now(),
        ctx.trace_id as f64,
    );
    let routed = router
        .map(request)
        .map_err(|e| format!("traced map: {e}"))?;
    local_trace.span_end(client_track, "map", local_trace.now());
    let lease = match &routed.response {
        Response::Map(m) => m
            .lease
            .ok_or_else(|| "traced map granted no lease".to_string())?,
        other => return Err(format!("traced map: unexpected {other:?}")),
    };
    router
        .release(routed.shard, lease)
        .map_err(|e| format!("release of traced lease: {e}"))?;

    // Merged fleet stats (histograms merged bucket-wise) before the
    // daemons drain; optionally exported as a Prometheus exposition.
    let merged = router
        .merged_stats()
        .map_err(|e| format!("merged stats: {e}"))?;
    if let Some(path) = args.optional("prom-out") {
        files::write(path, &prometheus_text(&merged))?;
    }

    // Collect every daemon's ring. The handshake brackets the daemon's
    // reported clock between two collector clock reads; the midpoint
    // is the best single-sample offset estimate (symmetric-delay
    // assumption — exact for virtual clocks, ~µs on loopback).
    let mut rings = Vec::with_capacity(shards + 1);
    for (d, addr) in addrs.iter().enumerate() {
        let mut client = ServiceClient::connect_with(addr, Some(timeout), WireFormat::V2Binary)?;
        let t0 = local_trace.now();
        let resp = client.trace_dump(&format!("observe-dump-{d}"))?;
        let t1 = local_trace.now();
        let Response::TraceDump(dump) = resp else {
            return Err(format!("shard {d} answered trace_dump with {resp:?}"));
        };
        rings.push(CollectedRing {
            label: format!("shard{d}"),
            offset_s: (t0 + t1) / 2.0 - dump.now_s,
            dump,
        });
    }

    // Shut the fleet down before exporting.
    for (d, addr) in addrs.iter().enumerate() {
        let mut client = ServiceClient::connect_with(addr, Some(timeout), WireFormat::V2Binary)?;
        client.shutdown(&format!("observe-bye-{d}"))?;
    }
    for server in servers {
        server.join();
    }

    // The collector's own ring joins the merge with zero offset.
    local_trace.flush();
    rings.push(CollectedRing {
        label: "collector".to_string(),
        dump: TraceDumpResponse {
            id: "local".to_string(),
            now_s: local_trace.now(),
            dropped: local_ring.dropped(),
            tracks: local_ring
                .tracks()
                .into_iter()
                .map(|t| geomap_service::proto::WireTrack {
                    track: t.id.0,
                    process: t.process,
                    name: t.name,
                })
                .collect(),
            events: local_ring
                .snapshot()
                .into_iter()
                .map(|e| WireTraceEvent {
                    track: e.track.0,
                    name: e.name.to_string(),
                    kind: match e.kind {
                        geomap_core::TraceEventKind::SpanBegin => WireTraceEvent::SPAN_BEGIN,
                        geomap_core::TraceEventKind::SpanEnd => WireTraceEvent::SPAN_END,
                        geomap_core::TraceEventKind::Instant => WireTraceEvent::INSTANT,
                        geomap_core::TraceEventKind::Counter => WireTraceEvent::COUNTER,
                    },
                    ts_s: e.ts,
                    value: e.value,
                })
                .collect(),
        },
        offset_s: 0.0,
    });

    let dropped: u64 = rings.iter().map(|r| r.dump.dropped).sum();
    let events: usize = rings.iter().map(|r| r.dump.events.len()).sum();
    let json = merge_chrome_json(&rings);
    files::write(out_path, &json)?;

    let mut hist_note = String::new();
    if let Some(d) = &merged.detail {
        if let Some(h) = d.hists.iter().find(|h| h.name == HistKind::MapE2e.label()) {
            let _ = write!(
                hist_note,
                ", fleet map p50/p99 {}/{} µs over {} requests",
                h.p50_us, h.p99_us, h.count
            );
        }
    }
    Ok(format!(
        "observed {shards} shards on loopback: trace id {} spans client -> router -> shard \
         -> solver; merged {events} events from {} rings ({dropped} dropped) into {out_path}{hist_note}\n",
        ctx.trace_id,
        rings.len(),
    ))
}

/// Merge collected rings into one Chrome trace-event JSON. Every
/// `(ring, process)` pair becomes its own pid so daemons never share a
/// process row; track ids stay per-ring (`tid` collisions across pids
/// are fine in the trace-event model).
fn merge_chrome_json(rings: &[CollectedRing]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut pids: Vec<(String, u32)> = Vec::new();
    let mut pid_of = |label: &str, process: &str| -> u32 {
        let key = format!("{label}/{process}");
        if let Some((_, pid)) = pids.iter().find(|(k, _)| *k == key) {
            return *pid;
        }
        let pid = (pids.len() + 1) as u32;
        pids.push((key, pid));
        pid
    };
    let push = |out: &mut String, first: &mut bool, line: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for ring in rings {
        for t in &ring.dump.tracks {
            let pid = pid_of(&ring.label, &t.process);
            push(
                &mut out,
                &mut first,
                format!(
                    r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
                    escape(&format!("{}/{}", ring.label, t.process))
                ),
            );
            push(
                &mut out,
                &mut first,
                format!(
                    r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{},"args":{{"name":"{}"}}}}"#,
                    t.track,
                    escape(&t.name)
                ),
            );
        }
    }
    for ring in rings {
        let mut events: Vec<&WireTraceEvent> = ring.dump.events.iter().collect();
        events.sort_by(|a, b| a.ts_s.total_cmp(&b.ts_s));
        for e in events {
            let process = ring
                .dump
                .tracks
                .iter()
                .find(|t| t.track == e.track)
                .map_or("", |t| t.process.as_str());
            let pid = pid_of(&ring.label, process);
            let ts_us = (e.ts_s + ring.offset_s) * 1e6;
            let name = escape(&e.name);
            let line = match e.kind {
                WireTraceEvent::SPAN_BEGIN | WireTraceEvent::SPAN_END => {
                    let ph = if e.kind == WireTraceEvent::SPAN_BEGIN {
                        "B"
                    } else {
                        "E"
                    };
                    format!(
                        r#"{{"name":"{name}","ph":"{ph}","ts":{ts_us:.3},"pid":{pid},"tid":{}}}"#,
                        e.track
                    )
                }
                WireTraceEvent::INSTANT => format!(
                    r#"{{"name":"{name}","ph":"i","s":"t","ts":{ts_us:.3},"pid":{pid},"tid":{}}}"#,
                    e.track
                ),
                _ => format!(
                    r#"{{"name":"{name}","ph":"C","ts":{ts_us:.3},"pid":{pid},"tid":{},"args":{{"value":{}}}}}"#,
                    e.track, e.value
                ),
            };
            push(&mut out, &mut first, line);
        }
    }
    out.push_str("\n]\n");
    out
}

/// Minimal JSON string escaping for track/event names.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn argv(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("geomap-observe-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn observe_requires_a_network_and_out() {
        assert!(observe(&argv("")).unwrap_err().contains("--network"));
    }

    #[test]
    fn stats_requires_an_addr() {
        assert!(stats(&argv("")).unwrap_err().contains("--addr"));
    }

    /// Satellite: when *every* address is unreachable, `stats` exits
    /// non-zero with a one-line diagnostic instead of emitting an
    /// empty exposition.
    #[test]
    fn stats_all_unreachable_is_a_one_line_error() {
        let err = stats(&argv(
            "--addr 127.0.0.1:9,127.0.0.1:13 --timeout-ms 300 --prometheus",
        ))
        .unwrap_err();
        assert!(err.contains("all 2 daemon(s) unreachable"), "{err}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err}");
    }

    #[test]
    fn prometheus_exposition_has_counters_even_without_detail() {
        let s = StatsResponse {
            id: "x".into(),
            served: 7,
            ..StatsResponse::default()
        };
        let text = prometheus_text(&s);
        assert!(text.contains("geomap_served_total 7"), "{text}");
        assert!(!text.contains("geomap_latency_seconds"), "{text}");
    }

    /// End-to-end: a 3-shard loopback observation produces one merged
    /// Chrome JSON whose every track balances B/E and carries exactly
    /// one trace id across client, router and shard processes.
    #[test]
    fn observe_round_trip_on_loopback() {
        let net_path = tmp("observe-net.csv");
        let out_path = tmp("observe-trace.json");
        let prom_path = tmp("observe-prom.txt");
        crate::commands::network(&argv(&format!("--provider ec2 --nodes 4 --out {net_path}")))
            .unwrap();
        let out = observe(&argv(&format!(
            "--network {net_path} --shards 3 --ranks 8 --requests 2 \
             --out {out_path} --prom-out {prom_path}"
        )))
        .unwrap();
        assert!(out.contains("observed 3 shards"), "got {out}");

        // The merged trace parses as JSON-ish and balances B/E per
        // (pid, tid) — the same invariant the CI smoke checks.
        let json = std::fs::read_to_string(&out_path).unwrap();
        let mut depth: std::collections::HashMap<(u64, u64), i64> =
            std::collections::HashMap::new();
        let mut trace_values: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut trace_pids: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for line in json.lines() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with('{') {
                continue;
            }
            let field = |key: &str| -> Option<u64> {
                let tag = format!("\"{key}\":");
                let rest = &line[line.find(&tag)? + tag.len()..];
                let end = rest
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(rest.len());
                rest[..end].parse().ok()
            };
            let (pid, tid) = (field("pid").unwrap(), field("tid").unwrap_or(0));
            if line.contains("\"ph\":\"B\"") {
                *depth.entry((pid, tid)).or_default() += 1;
            } else if line.contains("\"ph\":\"E\"") {
                *depth.entry((pid, tid)).or_default() -= 1;
            } else if line.contains("\"name\":\"trace\"") && line.contains("\"ph\":\"C\"") {
                trace_values.insert(field("value").unwrap());
                trace_pids.insert(pid);
            }
        }
        assert!(
            depth.values().all(|&d| d == 0),
            "unbalanced spans: {depth:?}"
        );
        assert_eq!(
            trace_values.len(),
            1,
            "expected one trace id: {trace_values:?}"
        );
        assert!(
            trace_pids.len() >= 3,
            "trace id should span client, router and shard processes: {trace_pids:?}"
        );

        // The exposition carries merged histogram percentiles that are
        // consistent with their own bucket dumps.
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("geomap_latency_seconds_bucket"), "{prom}");
        assert!(
            prom.contains("geomap_latency_quantile_seconds{kind=\"map_e2e\",quantile=\"0.5\"}"),
            "{prom}"
        );
        assert!(prom.contains("geomap_queue_depth_max"), "{prom}");
        assert!(prom.contains("geomap_stats_shards 3"), "{prom}");
    }
}
