//! CSV interchange for constraints and mappings, plus file helpers.

use geomap_core::{ConstraintVector, Mapping};
use geonet::SiteId;

/// Serialize a mapping as `process,site` rows.
pub fn mapping_to_csv(mapping: &Mapping) -> String {
    let mut s = String::from("process,site\n");
    for (i, site) in mapping.as_slice().iter().enumerate() {
        s.push_str(&format!("{},{}\n", i, site.index()));
    }
    s
}

/// Parse a mapping over `n` processes from `process,site` rows. Every
/// process must appear exactly once.
pub fn mapping_from_csv(n: usize, csv: &str) -> Result<Mapping, String> {
    let pairs = process_site_pairs(csv)?;
    let mut assignment: Vec<Option<SiteId>> = vec![None; n];
    for (lineno, (process, site)) in pairs {
        if process >= n {
            return Err(format!(
                "line {lineno}: process {process} out of range for n={n}"
            ));
        }
        if assignment[process].is_some() {
            return Err(format!("line {lineno}: process {process} assigned twice"));
        }
        assignment[process] = Some(SiteId(site));
    }
    let full: Option<Vec<SiteId>> = assignment.into_iter().collect();
    full.map(Mapping::new)
        .ok_or_else(|| "not every process is assigned".to_string())
}

/// Serialize a constraint vector as `process,site` rows (pinned
/// processes only).
pub fn constraints_to_csv(constraints: &ConstraintVector) -> String {
    let mut s = String::from("process,site\n");
    for (i, pin) in constraints.iter().enumerate() {
        if let Some(site) = pin {
            s.push_str(&format!("{},{}\n", i, site.index()));
        }
    }
    s
}

/// Parse a constraint vector over `n` processes (absent processes are
/// unconstrained).
pub fn constraints_from_csv(n: usize, csv: &str) -> Result<ConstraintVector, String> {
    let pairs = process_site_pairs(csv)?;
    let mut c = ConstraintVector::none(n);
    for (lineno, (process, site)) in pairs {
        if process >= n {
            return Err(format!(
                "line {lineno}: process {process} out of range for n={n}"
            ));
        }
        c.pin(process, SiteId(site));
    }
    Ok(c)
}

/// One parsed `process,site` row, tagged with its source line number.
type PinRow = (usize, (usize, usize));

/// Shared `process,site` parser: returns `(line, (process, site))`.
fn process_site_pairs(csv: &str) -> Result<Vec<PinRow>, String> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty input")?;
    if header.trim() != "process,site" {
        return Err(format!("bad header {header:?}, expected \"process,site\""));
    }
    let mut out = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 2 {
            return Err(format!(
                "line {}: expected 2 fields, got {}",
                lineno + 1,
                f.len()
            ));
        }
        let parse = |s: &str, what: &str| -> Result<usize, String> {
            s.trim()
                .parse::<usize>()
                .map_err(|e| format!("line {}: bad {what} {s:?}: {e}", lineno + 1))
        };
        out.push((lineno + 1, (parse(f[0], "process")?, parse(f[1], "site")?)));
    }
    Ok(out)
}

/// Read a whole file with a friendly error.
pub fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))
}

/// Write a file (creating parent directories) with a friendly error.
pub fn write(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {parent:?}: {e}"))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_roundtrip() {
        let m = Mapping::from(vec![0usize, 2, 1, 2]);
        let csv = mapping_to_csv(&m);
        assert_eq!(mapping_from_csv(4, &csv).unwrap(), m);
    }

    #[test]
    fn mapping_must_be_total() {
        let csv = "process,site\n0,1\n2,0\n";
        assert!(mapping_from_csv(3, csv)
            .unwrap_err()
            .contains("not every process"));
    }

    #[test]
    fn mapping_duplicates_rejected() {
        let csv = "process,site\n0,1\n0,2\n";
        assert!(mapping_from_csv(1, csv).unwrap_err().contains("twice"));
    }

    #[test]
    fn constraints_roundtrip() {
        let mut c = ConstraintVector::none(5);
        c.pin(1, SiteId(3));
        c.pin(4, SiteId(0));
        let csv = constraints_to_csv(&c);
        assert_eq!(constraints_from_csv(5, &csv).unwrap(), c);
    }

    #[test]
    fn header_checked() {
        assert!(mapping_from_csv(1, "a,b\n")
            .unwrap_err()
            .contains("bad header"));
        assert!(constraints_from_csv(1, "").unwrap_err().contains("empty"));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(constraints_from_csv(2, "process,site\n9,0\n")
            .unwrap_err()
            .contains("out of range"));
    }
}
