//! The five `geomap` commands as pure(ish) functions: parse flags, do
//! the work, return the text that goes to stdout. File writes happen
//! only when `--out` is given.

use crate::args::Args;
use crate::files;
use baselines::{GreedyMapper, MonteCarlo, MpippMapper, RandomMapper};
use commgraph::apps::AppKind;
use commgraph::CommPattern;
use geomap_core::{
    cost, ConstraintVector, GeoMapper, Mapper, MappingProblem, MultilevelConfig, MultilevelMapper,
    Trace,
};
use geonet::presets::MultiCloud;
use geonet::{io as netio, CalibrationConfig, Calibrator, InstanceType, SiteNetwork};

fn emit(args: &Args, contents: &str, what: &str) -> Result<String, String> {
    match args.optional("out") {
        Some(path) => {
            files::write(path, contents)?;
            Ok(format!("wrote {what} to {path}\n"))
        }
        None => Ok(contents.to_string()),
    }
}

fn instance_from(args: &Args) -> Result<InstanceType, String> {
    let name = args.optional("instance").unwrap_or("m4.xlarge");
    InstanceType::TABLE1
        .iter()
        .chain([InstanceType::M4Xlarge, InstanceType::StandardD2].iter())
        .find(|t| t.name().eq_ignore_ascii_case(name))
        .copied()
        .ok_or_else(|| format!("unknown instance type {name:?}"))
}

/// `geomap network` — synthesize a ground-truth network.
pub fn network(args: &Args) -> Result<String, String> {
    let provider = args.optional("provider").unwrap_or("ec2");
    let nodes: usize = args.parsed_or("nodes", 16)?;
    let seed: u64 = args.parsed_or("seed", 0x5C17)?;
    let net: SiteNetwork = match provider {
        "ec2" => {
            let default_regions = "us-east-1,us-west-2,ap-southeast-1,eu-west-1".to_string();
            let regions = args
                .optional("regions")
                .unwrap_or(&default_regions)
                .to_string();
            let names: Vec<&str> = regions.split(',').map(str::trim).collect();
            let sites = geonet::presets::ec2_sites(&names, nodes);
            geonet::SynthNetworkBuilder::new(geonet::SynthConfig {
                seed,
                ..geonet::SynthConfig::ec2(instance_from(args)?)
            })
            .build(sites)
        }
        "azure" => {
            let names: Vec<&str> = args
                .optional("regions")
                .map(|r| r.split(',').map(str::trim).collect())
                .unwrap_or_default();
            geonet::presets::azure_network(&names, nodes, seed)
        }
        "multicloud" => MultiCloud {
            nodes,
            seed,
            ..MultiCloud::default()
        }
        .build(),
        other => return Err(format!("unknown provider {other:?} (ec2|azure|multicloud)")),
    };
    let csv = netio::to_csv(&net);
    Ok(format!(
        "{}\n{}",
        net.summary(),
        emit(args, &csv, "network CSV")?
    ))
}

/// `geomap calibrate` — SKaMPI-style probing of a network file.
pub fn calibrate(args: &Args) -> Result<String, String> {
    let truth = netio::from_csv(&files::read(args.required("network")?)?)?;
    let config = CalibrationConfig {
        days: args.parsed_or("days", 3)?,
        probes_per_day: args.parsed_or("probes", 10)?,
        inter_noise_cv: args.parsed_or("noise", 0.02)?,
        intra_noise_cv: args.parsed_or("noise", 0.02)? * 2.5,
        seed: args.parsed_or("seed", 0xCA11)?,
        ..CalibrationConfig::default()
    };
    let report = Calibrator::new(config).calibrate(&truth);
    let summary = format!(
        "calibrated {} site pairs with {} probes; max inter-site variation {:.2}%\n",
        truth.num_sites() * truth.num_sites(),
        report.probes,
        report.max_inter_site_cv() * 100.0
    );
    Ok(format!(
        "{summary}{}",
        emit(
            args,
            &netio::to_csv(&report.estimated),
            "measured network CSV"
        )?
    ))
}

/// `geomap profile` — generate a workload and emit its CG/AG edges.
pub fn profile(args: &Args) -> Result<String, String> {
    let app_name = args.required("app")?;
    let app = AppKind::parse(app_name).ok_or_else(|| format!("unknown app {app_name:?}"))?;
    let ranks: usize = args.parsed("ranks")?;
    let workload = app.workload(ranks);
    let pattern = workload.pattern();
    let mut summary = format!(
        "{app}: {} ranks, {:.2} MB over {} messages, {} edges, locality {:.2}\n",
        ranks,
        pattern.total_bytes() / 1e6,
        pattern.total_msgs(),
        pattern.num_edges(),
        pattern.diagonal_locality((ranks as f64).sqrt() as usize + 1),
    );
    if args.switch("heatmap") {
        summary.push_str(&pattern.ascii_heatmap(ranks.div_ceil(32).max(1)));
    }
    Ok(format!(
        "{summary}{}",
        emit(args, &pattern.to_csv(), "pattern CSV")?
    ))
}

/// Build the problem shared by `map` and `evaluate`.
fn load_problem(args: &Args) -> Result<MappingProblem, String> {
    let net = netio::from_csv(&files::read(args.required("network")?)?)?;
    let default_n = net.total_nodes();
    let n: usize = args.parsed_or("ranks", default_n)?;
    let pattern = CommPattern::from_csv(n, &files::read(args.required("pattern")?)?)?;
    let constraints = match args.optional("constraints") {
        Some(path) => files::constraints_from_csv(n, &files::read(path)?)?,
        None => ConstraintVector::none(n),
    };
    if net.total_nodes() < n {
        return Err(format!("{n} processes exceed {} nodes", net.total_nodes()));
    }
    Ok(MappingProblem::new(pattern, net, constraints))
}

/// Construct the `--algorithm` mapper with `trace` wired into it
/// (pass [`Trace::off`] for an untraced run).
fn mapper_from(args: &Args, seed: u64, trace: &Trace) -> Result<Box<dyn Mapper>, String> {
    let algorithm = args.optional("algorithm").unwrap_or("geo");
    Ok(match algorithm {
        "geo" => Box::new(GeoMapper {
            seed,
            kappa: args.parsed_or("kappa", 4)?,
            trace: trace.clone(),
            ..GeoMapper::default()
        }),
        "greedy" => Box::new(GreedyMapper {
            trace: trace.clone(),
            ..GreedyMapper::default()
        }),
        "mpipp" => Box::new(MpippMapper {
            trace: trace.clone(),
            ..MpippMapper::with_seed(seed)
        }),
        "random" => Box::new(RandomMapper::with_seed(seed)),
        "montecarlo" => Box::new(MonteCarlo {
            trace: trace.clone(),
            ..MonteCarlo::new(args.parsed_or("samples", 10_000)?, seed)
        }),
        "multilevel" => {
            let defaults = MultilevelConfig::default();
            Box::new(MultilevelMapper {
                config: MultilevelConfig {
                    coarsen_cutoff: args.parsed_or("ml-cutoff", defaults.coarsen_cutoff)?,
                    match_rounds: args.parsed_or("ml-rounds", defaults.match_rounds)?,
                    refine_passes: args.parsed_or("ml-passes", defaults.refine_passes)?,
                },
                inner: GeoMapper {
                    seed,
                    kappa: args.parsed_or("kappa", 4)?,
                    trace: trace.clone(),
                    ..GeoMapper::default()
                },
                trace: trace.clone(),
                ..MultilevelMapper::default()
            })
        }
        other => {
            return Err(format!(
                "unknown algorithm {other:?} (geo|greedy|mpipp|random|montecarlo|multilevel)"
            ))
        }
    })
}

/// `geomap map` — compute a mapping.
pub fn map(args: &Args) -> Result<String, String> {
    let problem = load_problem(args)?;
    let seed: u64 = args.parsed_or("seed", 0x5C17)?;
    let mapper = mapper_from(args, seed, &Trace::off())?;
    let start = std::time::Instant::now();
    let mapping = mapper.map(&problem);
    let elapsed = start.elapsed();
    mapping
        .validate(&problem)
        .map_err(|e| format!("internal: infeasible mapping: {e}"))?;
    let c = cost(&problem, &mapping);
    let summary = format!(
        "{} mapped {} processes onto {} sites in {elapsed:?}; Eq.3 cost {c:.3}s\nsite loads: {:?}\n",
        mapper.name(),
        problem.num_processes(),
        problem.num_sites(),
        mapping.site_counts(problem.num_sites()),
    );
    Ok(format!(
        "{summary}{}",
        emit(args, &files::mapping_to_csv(&mapping), "mapping CSV")?
    ))
}

/// `geomap trace` — run a mapper (and optionally a simulated replay)
/// with event-level tracing on, emitting Chrome trace-event JSON for
/// Perfetto / `chrome://tracing`.
pub fn trace(args: &Args) -> Result<String, String> {
    use geomap_core::RingBufferSink;
    use std::sync::Arc;

    let problem = load_problem(args)?;
    let seed: u64 = args.parsed_or("seed", 0x5C17)?;
    let capacity: usize = args.parsed_or("events", 1 << 20)?;
    let sink = Arc::new(RingBufferSink::new(capacity));
    let trace = Trace::new(sink.clone());
    let mapper = mapper_from(args, seed, &trace)?;
    let mapping = mapper.map(&problem);
    mapping
        .validate(&problem)
        .map_err(|e| format!("internal: infeasible mapping: {e}"))?;
    let mut summary = format!(
        "{} traced over {} processes / {} sites; Eq.3 cost {:.3}s\n",
        mapper.name(),
        problem.num_processes(),
        problem.num_sites(),
        cost(&problem, &mapping),
    );
    if let Some(app_name) = args.optional("app") {
        let app = AppKind::parse(app_name).ok_or_else(|| format!("unknown app {app_name:?}"))?;
        let workload = app.workload(problem.num_processes());
        let r = mpirt::execute_workload_traced(
            workload.as_ref(),
            problem.network(),
            mapping.as_slice(),
            &mpirt::RunConfig::default(),
            &trace,
        );
        summary.push_str(&format!(
            "replayed {app} on the simulated runtime: makespan {:.3}s\n",
            r.makespan
        ));
    }
    if sink.dropped() > 0 {
        summary.push_str(&format!(
            "warning: ring full, dropped the oldest {} events (raise --events)\n",
            sink.dropped()
        ));
    }
    summary.push_str(&format!(
        "{} events on {} tracks (load the JSON in Perfetto or chrome://tracing)\n",
        sink.snapshot().len(),
        sink.tracks().len(),
    ));
    Ok(format!(
        "{summary}{}",
        emit(args, &sink.to_chrome_json(), "Chrome trace JSON")?
    ))
}

/// `geomap evaluate` — score a mapping file against a network+pattern.
pub fn evaluate(args: &Args) -> Result<String, String> {
    let problem = load_problem(args)?;
    let mapping = files::mapping_from_csv(
        problem.num_processes(),
        &files::read(args.required("mapping")?)?,
    )?;
    mapping
        .validate(&problem)
        .map_err(|e| format!("mapping is infeasible: {e}"))?;
    let seed: u64 = args.parsed_or("seed", 0x5C17)?;
    let samples: usize = args.parsed_or("baseline-samples", 10)?;
    let c = cost(&problem, &mapping);
    let baseline = baselines::baseline_mean_cost(&problem, samples, seed);
    let mut out = format!(
        "Eq.3 cost: {c:.3}s\nrandom baseline (mean of {samples}): {baseline:.3}s\nimprovement: {:.1}%\n",
        (baseline - c) / baseline * 100.0
    );
    if args.switch("simulate") {
        let app_name = args.required("app")?;
        let app = AppKind::parse(app_name).ok_or_else(|| format!("unknown app {app_name:?}"))?;
        let workload = app.workload(problem.num_processes());
        let r = mpirt::execute_workload(
            workload.as_ref(),
            problem.network(),
            mapping.as_slice(),
            &mpirt::RunConfig::default(),
        );
        out.push_str(&format!(
            "simulated makespan ({app}): {:.3}s, WAN traffic fraction {:.1}%\n",
            r.makespan,
            r.stats.wan_fraction() * 100.0
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("geomap-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn full_workflow_end_to_end() {
        let net_path = tmp("net.csv");
        let meas_path = tmp("measured.csv");
        let pat_path = tmp("pattern.csv");
        let map_path = tmp("mapping.csv");

        let out = network(&argv(&format!("--provider ec2 --nodes 4 --out {net_path}"))).unwrap();
        assert!(out.contains("4 sites"));

        let out = calibrate(&argv(&format!(
            "--network {net_path} --days 1 --probes 3 --out {meas_path}"
        )))
        .unwrap();
        assert!(out.contains("calibrated"));

        let out = profile(&argv(&format!("--app lu --ranks 16 --out {pat_path}"))).unwrap();
        assert!(out.contains("LU: 16 ranks"));

        let out = map(&argv(&format!(
            "--network {meas_path} --pattern {pat_path} --algorithm geo --out {map_path}"
        )))
        .unwrap();
        assert!(out.contains("Geo-distributed mapped 16 processes"), "{out}");

        let out = evaluate(&argv(&format!(
            "--network {net_path} --pattern {pat_path} --mapping {map_path} --simulate --app lu"
        )))
        .unwrap();
        assert!(out.contains("improvement:"), "{out}");
        assert!(out.contains("simulated makespan"), "{out}");
        // The mapping was optimized, so the improvement line should not
        // be wildly negative; parse and check > 0.
        let imp: f64 = out
            .lines()
            .find(|l| l.starts_with("improvement:"))
            .and_then(|l| {
                l.trim_start_matches("improvement:")
                    .trim_end_matches('%')
                    .trim()
                    .parse()
                    .ok()
            })
            .unwrap();
        assert!(imp > 0.0, "improvement {imp}");
    }

    #[test]
    fn map_without_out_prints_csv() {
        let net_path = tmp("net2.csv");
        let pat_path = tmp("pat2.csv");
        network(&argv(&format!("--provider ec2 --nodes 2 --out {net_path}"))).unwrap();
        profile(&argv(&format!("--app dnn --ranks 8 --out {pat_path}"))).unwrap();
        let out = map(&argv(&format!(
            "--network {net_path} --pattern {pat_path} --algorithm greedy"
        )))
        .unwrap();
        assert!(out.contains("process,site"), "{out}");
    }

    #[test]
    fn constraints_flow_through_map() {
        let net_path = tmp("net3.csv");
        let pat_path = tmp("pat3.csv");
        let cons_path = tmp("cons3.csv");
        network(&argv(&format!("--provider ec2 --nodes 2 --out {net_path}"))).unwrap();
        profile(&argv(&format!("--app sp --ranks 8 --out {pat_path}"))).unwrap();
        files::write(&cons_path, "process,site\n0,3\n5,1\n").unwrap();
        let out = map(&argv(&format!(
            "--network {net_path} --pattern {pat_path} --constraints {cons_path}"
        )))
        .unwrap();
        // Read the printed mapping and check the pins.
        let body: String = out
            .lines()
            .skip_while(|l| !l.starts_with("process,site"))
            .collect::<Vec<_>>()
            .join("\n");
        let m = files::mapping_from_csv(8, &body).unwrap();
        assert_eq!(m.site_of(0).index(), 3);
        assert_eq!(m.site_of(5).index(), 1);
    }

    #[test]
    fn trace_command_emits_all_three_layers() {
        let net_path = tmp("net4.csv");
        let pat_path = tmp("pat4.csv");
        let trace_path = tmp("trace4.json");
        network(&argv(&format!("--provider ec2 --nodes 2 --out {net_path}"))).unwrap();
        profile(&argv(&format!("--app lu --ranks 8 --out {pat_path}"))).unwrap();
        let out = trace(&argv(&format!(
            "--network {net_path} --pattern {pat_path} --algorithm geo --app lu --out {trace_path}"
        )))
        .unwrap();
        assert!(out.contains("events on"), "{out}");
        assert!(out.contains("makespan"), "{out}");
        let json = std::fs::read_to_string(&trace_path).unwrap();
        assert!(json.trim_start().starts_with('['), "not a JSON array");
        assert!(json.trim_end().ends_with(']'), "array not closed");
        for layer in ["\"search\"", "\"mpirt\"", "\"simnet\""] {
            assert!(json.contains(layer), "missing {layer} process in trace");
        }
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"C\""), "no counter samples");
    }

    #[test]
    fn errors_are_user_friendly() {
        assert!(profile(&argv("--app nope --ranks 4"))
            .unwrap_err()
            .contains("unknown app"));
        assert!(network(&argv("--provider gcp"))
            .unwrap_err()
            .contains("unknown provider"));
        assert!(map(&argv("--pattern x.csv"))
            .unwrap_err()
            .contains("--network"));
        let e = calibrate(&argv("--network /no/such/file.csv")).unwrap_err();
        assert!(e.contains("cannot read"), "{e}");
    }

    #[test]
    fn azure_and_multicloud_networks_build() {
        let out = network(&argv("--provider azure --nodes 2")).unwrap();
        assert!(out.contains("sites"));
        let out = network(&argv("--provider multicloud --nodes 2")).unwrap();
        assert!(out.contains("6 sites"));
    }
}
