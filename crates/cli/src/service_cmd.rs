//! The `geomap serve` / `geomap request` subcommands: the daemon
//! front-end and its line-mode client.
//!
//! `serve` blocks until a `shutdown` request arrives over the wire
//! (graceful drain), then returns a one-paragraph summary — so a CI
//! job can start it in the background, point clients at the port from
//! `--addr-file`, and assert a clean zero exit after shutdown.
//!
//! `request` prints the server's raw response JSON line to stdout and
//! exits non-zero with a one-line diagnostic whenever anything goes
//! wrong: unreachable address, malformed response JSON, or a rejection
//! (`over_capacity`, `bad_request`, ...) from the daemon.
//!
//! The daemon answers both wire protocols on one port, sniffing each
//! connection's first byte, so `serve` needs no protocol flag;
//! `request --protocol v2` switches the client to binary frames, and
//! `--pool N` sends through N pooled pipelined connections.

use crate::args::Args;
use crate::files;
use geomap_core::{JsonLinesSink, Metrics, RingBufferSink, StreamingSink, Trace};
use geomap_service::proto::{CalibSpec, MultilevelSpec, Response};
use geomap_service::{
    FederatedPool, MapRequest, MappingServer, MappingService, PooledClient, Reconciler,
    ReconcilerConfig, RemapRequest, Request, RetryPolicy, RetryingClient, ServiceClient,
    ServiceConfig, ShardRouter, TcpConnector, WatchedPlacement, WireFormat,
};
use geonet::io as netio;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// `geomap serve` — run the mapping daemon until shutdown.
pub fn serve(args: &Args) -> Result<String, String> {
    let network = netio::from_csv(&files::read(args.required("network")?)?)?;
    let defaults = ServiceConfig::default();
    let metrics = match args.optional("metrics") {
        None => Metrics::off(),
        Some(path) => Metrics::new(Arc::new(
            JsonLinesSink::create(std::path::Path::new(path))
                .map_err(|e| format!("cannot create metrics file {path:?}: {e}"))?,
        )),
    };
    // --trace-ring CAP keeps the newest CAP events in memory and
    // answers TraceDump requests (the fleet-timeline collector);
    // --trace FILE streams every event to disk. Ring wins when both
    // are given — a dumpable daemon is what `observe` needs.
    let (trace, trace_ring) = match args.optional("trace-ring") {
        Some(cap) => {
            let cap: usize = cap
                .parse()
                .map_err(|e| format!("--trace-ring {cap:?}: {e}"))?;
            let ring = Arc::new(RingBufferSink::new(cap.max(1)));
            (Trace::new(ring.clone()), Some(ring))
        }
        None => match args.optional("trace") {
            None => (Trace::off(), None),
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot create trace file {path:?}: {e}"))?;
                (
                    Trace::new(Arc::new(StreamingSink::from_writer(
                        std::io::BufWriter::new(file),
                    ))),
                    None,
                )
            }
        },
    };
    let config = ServiceConfig {
        workers: args.parsed_or("workers", defaults.workers)?,
        queue_capacity: args.parsed_or("queue", defaults.queue_capacity)?,
        problem_cache_capacity: args.parsed_or("problem-cache", defaults.problem_cache_capacity)?,
        result_cache_capacity: args.parsed_or("result-cache", defaults.result_cache_capacity)?,
        idempotency_cache_capacity: args
            .parsed_or("idem-cache", defaults.idempotency_cache_capacity)?,
        default_deadline: args
            .optional("deadline-ms")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|e| format!("--deadline-ms {v:?}: {e}"))
            })
            .transpose()?
            .map(Duration::from_millis),
        default_lease_ttl: args
            .optional("lease-ttl-ms")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|e| format!("--lease-ttl-ms {v:?}: {e}"))
            })
            .transpose()?
            .map(Duration::from_millis),
        metrics,
        trace,
        trace_ring,
        record_hists: defaults.record_hists,
        clock: defaults.clock,
    };
    let summary = network.summary();
    let service = MappingService::new(network, config);
    let addr = args.optional("addr").unwrap_or("127.0.0.1:0");
    let server =
        MappingServer::bind(service, addr).map_err(|e| format!("cannot bind {addr:?}: {e}"))?;
    let bound = server.local_addr();
    if let Some(path) = args.optional("addr-file") {
        files::write(path, &format!("{bound}\n"))?;
    }

    // Block until a client asks for graceful shutdown, then drain.
    while !server.service().is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = server.service().stats("serve-exit", false);
    server.join();
    Ok(format!(
        "served {} on {bound} until shutdown: {} mapped ({} result hits, {} problem hits, {} misses), {} rejected, {} leases still active\n",
        summary,
        stats.served,
        stats.result_hits,
        stats.problem_hits,
        stats.misses,
        stats.rejected,
        stats.active_leases,
    ))
}

/// `geomap federate` — spin up an N-daemon federation on loopback,
/// drive it through both federation clients, and verify the global
/// ledger.
///
/// Three phases, mirroring the `service_load` bench and the chaos
/// suite:
///
/// 1. **Affinity** (pooled pipelined v2): prime `--requests` distinct
///    problems through the [`FederatedPool`], then repeat the batch —
///    the repeats must land on the shards whose result caches already
///    hold them, measured as the federation-wide result-hit rate.
/// 2. **Reserve/reconcile** (retrying router): keyed reserving maps
///    through the [`ShardRouter`], then release every granted lease
///    and drain reconciliation to empty.
/// 3. **Conservation**: scatter-gather stats and require every daemon
///    back at full capacity with zero active leases.
pub fn federate(args: &Args) -> Result<String, String> {
    let network_csv = files::read(args.required("network")?)?;
    let shards = args.parsed_or("shards", 3usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let requests = args.parsed_or("requests", 24usize)?;
    if requests == 0 {
        return Err("--requests must be at least 1".into());
    }
    let ranks = args.parsed_or("ranks", 8usize)?;
    let pool = args.parsed_or("pool", 2usize)?;
    let timeout = Duration::from_millis(args.parsed_or("timeout-ms", 60_000u64)?);

    // One daemon per shard, each owning its own full-capacity copy of
    // the network (shards are disjoint capacity pools).
    let mut servers = Vec::with_capacity(shards);
    let mut addrs = Vec::with_capacity(shards);
    let caps = netio::from_csv(&network_csv)?.capacities();
    for _ in 0..shards {
        let network = netio::from_csv(&network_csv)?;
        let server = MappingServer::bind(
            MappingService::new(network, ServiceConfig::default()),
            "127.0.0.1:0",
        )
        .map_err(|e| format!("cannot bind federation daemon: {e}"))?;
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }

    // Distinct problems: same pattern, distinct solver seeds (the seed
    // is a problem-defining field, so each gets its own ring position
    // and its own result-cache entry).
    let pattern_csv = commgraph::apps::AppKind::parse("sp")
        .expect("sp is a known app")
        .workload(ranks)
        .pattern()
        .to_csv();
    let batch: Vec<MapRequest> = (0..requests)
        .map(|i| MapRequest {
            ranks: Some(ranks),
            seed: 0x5C17 + i as u64,
            ..MapRequest::new(format!("fed-prime-{i}"), pattern_csv.clone())
        })
        .collect();

    // Phase 1: prime, then repeat; affinity = result hits on repeat.
    let mut fed_pool = FederatedPool::new(&addrs, pool, Some(timeout));
    for response in fed_pool.map_batch(&batch)? {
        if let Response::Error(e) = response {
            return Err(format!(
                "prime batch rejected: {}: {}",
                e.code.label(),
                e.message
            ));
        }
    }
    let hits_before: u64 = fed_pool.stats()?.iter().map(|s| s.result_hits).sum();
    let repeats: Vec<MapRequest> = batch
        .iter()
        .enumerate()
        .map(|(i, m)| MapRequest {
            id: format!("fed-repeat-{i}"),
            ..m.clone()
        })
        .collect();
    for response in fed_pool.map_batch(&repeats)? {
        if let Response::Error(e) = response {
            return Err(format!(
                "repeat batch rejected: {}: {}",
                e.code.label(),
                e.message
            ));
        }
    }
    let hits_after: u64 = fed_pool.stats()?.iter().map(|s| s.result_hits).sum();
    let affinity = (hits_after - hits_before) as f64 / requests as f64;

    // Phase 2: keyed reserving maps through the retrying router, then
    // release everything and reconcile to quiescence.
    let connectors: Vec<(String, TcpConnector)> = addrs
        .iter()
        .map(|a| {
            (
                a.clone(),
                TcpConnector::new(a, Some(timeout)).with_format(WireFormat::V2Binary),
            )
        })
        .collect();
    let mut router = ShardRouter::new(connectors, RetryPolicy::default());
    let reserving = requests.min(8);
    for i in 0..reserving {
        let request = MapRequest {
            ranks: Some(ranks),
            seed: 0x5C17 + i as u64,
            reserve: true,
            ..MapRequest::new(format!("fed-reserve-{i}"), pattern_csv.clone())
        };
        let routed = router
            .map(request)
            .map_err(|e| format!("reserving map {i}: {e}"))?;
        // Reserve-then-release per round: several problems share a home
        // shard, and one shard cannot hold many ranks-sized leases at
        // once on a small network.
        match &routed.response {
            Response::Map(m) => {
                let lease = m
                    .lease
                    .ok_or_else(|| format!("reserving map {i} granted no lease"))?;
                router
                    .release(routed.shard, lease)
                    .map_err(|e| format!("release of lease {lease}: {e}"))?;
            }
            Response::Error(e) => {
                return Err(format!(
                    "reserving map {i} rejected: {}: {}",
                    e.code.label(),
                    e.message
                ))
            }
            other => return Err(format!("reserving map {i}: unexpected {other:?}")),
        }
    }
    let homes = router.home_answers();
    let failovers = router.failovers();
    let mut spins = 0;
    while router.pending_reconciliations() > 0 {
        router.reconcile();
        spins += 1;
        if spins > 32 {
            return Err("journal reconciliation never settled".into());
        }
    }

    // Phase 3: the global ledger must balance — every shard fully free.
    let stats = router
        .stats()
        .map_err(|e| format!("federated stats: {e}"))?;
    for (i, s) in stats.iter().enumerate() {
        if s.active_leases != 0 || s.free_nodes != caps {
            return Err(format!(
                "shard {i} broke conservation: {} active leases, free {:?} vs capacity {:?}",
                s.active_leases, s.free_nodes, caps
            ));
        }
    }
    let served: u64 = stats.iter().map(|s| s.served).sum();

    fed_pool.shutdown()?;
    for server in servers {
        server.join();
    }
    Ok(format!(
        "federated {shards} shards on loopback: {requests} problems primed + repeated, \
         affinity hit rate {affinity:.2}, {reserving} reserving maps routed \
         ({homes} home, {failovers} failover), {served} served total, \
         all leases reconciled to zero, ledger conserved\n"
    ))
}

/// `geomap churn` — drive a loopback daemon through a seeded drift
/// scenario end-to-end.
///
/// The scenario is the reconciler control loop in miniature:
///
/// 1. place an application on the daemon with a reserving `map` over
///    the wire (real TCP loopback, binary frames);
/// 2. put the placement under [`Reconciler`] watch;
/// 3. for `--rounds` rounds, inject drift with a seeded capacity flip
///    and tick the reconciler — every repair it publishes is printed as
///    a `remap_response` JSON line (lease rebooked in place);
/// 4. finish with one advisory `remap` request over the wire and print
///    its diff too.
///
/// Every printed diff is checked on the spot: migrations within the
/// budget, Eq. 3 cost monotone, `migrations == |moved|` — the CI
/// churn-smoke validator re-checks the same invariants from the
/// emitted lines. Exits non-zero on any violation.
pub fn churn(args: &Args) -> Result<String, String> {
    let network = netio::from_csv(&files::read(args.required("network")?)?)?;
    let ranks = args.parsed_or("ranks", 16usize)?;
    let rounds = args.parsed_or("rounds", 4usize)?;
    let seed = args.parsed_or("seed", 0xD21F7u64)?;
    let budget = args.parsed_or("budget", ranks.div_ceil(4) as u64)?;
    let alpha = args.parsed_or("alpha", 0.0f64)?;
    if !(alpha.is_finite() && alpha >= 0.0) {
        return Err(format!("--alpha {alpha}: must be finite and >= 0"));
    }
    let timeout = Duration::from_millis(args.parsed_or("timeout-ms", 60_000u64)?);

    let server = MappingServer::bind(
        MappingService::new(network, ServiceConfig::default()),
        "127.0.0.1:0",
    )
    .map_err(|e| format!("cannot bind churn daemon: {e}"))?;
    let addr = server.local_addr().to_string();
    let service = Arc::clone(server.service());

    // Phase 1: place the application over the wire.
    let pattern_csv = commgraph::apps::AppKind::parse("sp")
        .expect("sp is a known app")
        .workload(ranks)
        .pattern()
        .to_csv();
    let mut client = ServiceClient::connect_with(&addr, Some(timeout), WireFormat::V2Binary)?;
    let place = MapRequest {
        ranks: Some(ranks),
        reserve: true,
        seed,
        ..MapRequest::new("churn-place", pattern_csv.clone())
    };
    let (mapping, lease) = match client.map(place)? {
        Response::Map(m) => {
            let lease = m
                .lease
                .ok_or_else(|| "placement granted no lease".to_string())?;
            (m.mapping.clone(), lease)
        }
        Response::Error(e) => {
            return Err(format!(
                "placement rejected: {}: {}",
                e.code.label(),
                e.message
            ))
        }
        other => return Err(format!("placement answered {other:?}")),
    };

    // Phase 2: watch it. budget_frac reproduces the caller's absolute
    // budget exactly: ceil(frac * ranks) == budget.
    let rec = Reconciler::new(
        Arc::clone(&service),
        ReconcilerConfig {
            budget_frac: budget as f64 / ranks as f64,
            alpha,
            ..ReconcilerConfig::default()
        },
    );
    let mut placement = WatchedPlacement::new("churn-app", pattern_csv.clone(), mapping);
    placement.lease = Some(lease);
    rec.watch(placement);

    // Phase 3: seeded drift rounds.
    let caps = service.inventory().capacities();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    let mut moved_total = 0u64;
    let check = |d: &geomap_service::RemapDiffResponse| -> Result<(), String> {
        if d.migrations > budget {
            return Err(format!(
                "diff {} moved {} ranks past the budget of {budget}",
                d.id, d.migrations
            ));
        }
        if d.migrations as usize != d.moved.len() {
            return Err(format!(
                "diff {}: migrations {} disagrees with moved {:?}",
                d.id, d.migrations, d.moved
            ));
        }
        if d.new_cost > d.old_cost {
            return Err(format!(
                "diff {} worsened Eq. 3: {} -> {}",
                d.id, d.old_cost, d.new_cost
            ));
        }
        Ok(())
    };
    for round in 0..rounds {
        let site = rng.random_range(0..caps.len());
        let target = rng.random_range(1..=caps[site] * 2);
        let applied = service.inventory().set_capacity(site, target);
        let report = rec.tick();
        let _ = writeln!(
            out,
            "# round {round}: site {site} capacity -> {applied}, drift score {}",
            report.drift_score
        );
        for diff in &report.diffs {
            check(diff)?;
            moved_total += diff.migrations;
            let _ = writeln!(out, "{}", Response::RemapDiff(diff.clone()).to_line());
        }
    }

    // Phase 4: one advisory remap over the wire from the placement's
    // current (possibly repaired) mapping.
    let current = rec
        .watched_mapping("churn-app")
        .ok_or_else(|| "placement fell off the watch list".to_string())?;
    let mut wire = RemapRequest::new("churn-wire", pattern_csv, current);
    wire.budget = Some(budget);
    wire.alpha = alpha;
    match client.remap(wire)? {
        Response::RemapDiff(d) => {
            check(&d)?;
            let _ = writeln!(out, "{}", Response::RemapDiff(d).to_line());
        }
        Response::Error(e) => {
            return Err(format!(
                "wire remap rejected: {}: {}",
                e.code.label(),
                e.message
            ))
        }
        other => return Err(format!("wire remap answered {other:?}")),
    }

    client.shutdown("churn-bye")?;
    server.join();
    let _ = writeln!(
        out,
        "churn: {rounds} seeded drift rounds on loopback, {} reconciler repairs, \
         {moved_total} ranks migrated (budget {budget}/repair), lease {lease} rebooked in \
         place, wire remap diff verified",
        rec.remaps()
    );
    Ok(out)
}

/// `geomap request` — send one request to a running daemon.
pub fn request(args: &Args) -> Result<String, String> {
    let addr = args.required("addr")?;
    let timeout = Duration::from_millis(args.parsed_or("timeout-ms", 60_000u64)?);
    let id = args.optional("id").unwrap_or("cli").to_string();

    let request = if args.switch("stats") || args.switch("detail") {
        Request::Stats {
            id,
            detail: args.switch("detail"),
        }
    } else if args.switch("trace-dump") {
        Request::TraceDump { id }
    } else if args.switch("shutdown") {
        Request::Shutdown { id }
    } else if let Some(lease) = args.optional("release") {
        Request::Release {
            id,
            lease: lease
                .parse::<u64>()
                .map_err(|e| format!("--release {lease:?}: {e}"))?,
        }
    } else {
        let pattern_csv = files::read(args.required("pattern")?)?;
        let constraints_csv = args.optional("constraints").map(files::read).transpose()?;
        let defaults = CalibSpec::default();
        // `--multilevel` (or `--algorithm multilevel`) routes the solve
        // through the coarsen–map–refine hierarchy; `--ml-cutoff`,
        // `--ml-rounds` and `--ml-passes` tune it.
        let algorithm = if args.switch("multilevel") {
            "multilevel".to_string()
        } else {
            args.optional("algorithm").unwrap_or("geo").to_string()
        };
        let ml = MultilevelSpec::default();
        let multilevel = (algorithm == "multilevel")
            .then(|| -> Result<MultilevelSpec, String> {
                Ok(MultilevelSpec {
                    coarsen_cutoff: args.parsed_or("ml-cutoff", ml.coarsen_cutoff)?,
                    match_rounds: args.parsed_or("ml-rounds", ml.match_rounds)?,
                    refine_passes: args.parsed_or("ml-passes", ml.refine_passes)?,
                })
            })
            .transpose()?;
        Request::Map(MapRequest {
            ranks: args
                .optional("ranks")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|e| format!("--ranks {v:?}: {e}"))
                })
                .transpose()?,
            constraints_csv,
            algorithm,
            multilevel,
            seed: args.parsed_or("seed", 0x5C17u64)?,
            kappa: args.parsed_or("kappa", 4usize)?,
            samples: args.parsed_or("samples", 10_000usize)?,
            calibration: CalibSpec {
                days: args.parsed_or("calib-days", defaults.days)?,
                probes_per_day: args.parsed_or("calib-probes", defaults.probes_per_day)?,
                noise_cv: args.parsed_or("calib-noise", defaults.noise_cv)?,
                loss_rate: args.parsed_or("calib-loss", defaults.loss_rate)?,
                seed: args.parsed_or("calib-seed", defaults.seed)?,
            },
            idempotency_key: args.optional("idem").map(String::from),
            deadline_ms: args
                .optional("deadline-ms")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|e| format!("--deadline-ms {v:?}: {e}"))
                })
                .transpose()?,
            reserve: args.switch("reserve"),
            lease_ttl_ms: args
                .optional("lease-ttl-ms")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|e| format!("--lease-ttl-ms {v:?}: {e}"))
                })
                .transpose()?,
            use_result_cache: !args.switch("no-cache"),
            ..MapRequest::new(id, pattern_csv)
        })
    };

    // `--protocol v1|v2` picks the wire encoding (JSON lines by
    // default); `--pool N` with N > 1 routes through the pooled
    // pipelined client instead of a single connection.
    let format = match args.optional("protocol").unwrap_or("v1") {
        "v1" => WireFormat::V1Json,
        "v2" => WireFormat::V2Binary,
        other => return Err(format!("--protocol {other:?}: expected v1 or v2")),
    };
    let pool = args.parsed_or("pool", 1usize)?;

    // `--retries N` switches to the resilient client: N retries after
    // the first attempt, capped exponential backoff with deterministic
    // jitter starting at `--backoff-ms` (reserving map requests get an
    // auto idempotency key, so a retry can never double-reserve).
    let retries = args.parsed_or("retries", 0u32)?;
    let response = if pool > 1 {
        if retries > 0 {
            return Err("--retries is not supported with --pool; pooled batches fail whole".into());
        }
        let mut client = PooledClient::with_format(addr, pool, Some(timeout), format);
        client
            .pipeline(std::slice::from_ref(&request))?
            .pop()
            .ok_or_else(|| "pooled client returned no response".to_string())?
    } else if retries > 0 {
        let policy = RetryPolicy {
            max_attempts: retries + 1,
            base_backoff: Duration::from_millis(args.parsed_or("backoff-ms", 50u64)?),
            ..RetryPolicy::default()
        };
        let connector = TcpConnector::new(addr, Some(timeout)).with_format(format);
        let mut client = RetryingClient::new(connector, policy);
        match request {
            Request::Map(m) => client.map(m),
            other => client.send(&other),
        }
        .map_err(|e| e.to_string())?
    } else {
        let mut client = ServiceClient::connect_with(addr, Some(timeout), format)?;
        client.send(&request)?
    };
    let line = response.to_line();
    match &response {
        Response::Error(e) => Err(format!(
            "request {:?} rejected: {}: {}",
            e.id,
            e.code.label(),
            e.message
        )),
        Response::Map(m) => {
            if let Some(path) = args.optional("out") {
                let mapping = geomap_core::Mapping::from(m.mapping.clone());
                files::write(path, &files::mapping_to_csv(&mapping))?;
            }
            Ok(format!("{line}\n"))
        }
        _ => Ok(format!("{line}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn argv(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("geomap-service-cmd-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn request_to_unreachable_address_fails_with_one_line() {
        // TEST-NET-1 is guaranteed unroutable; the refusal must be a
        // single-line diagnostic, not a hang or a panic.
        let pat = tmp("unreachable-pattern.csv");
        files::write(&pat, "src,dst,bytes,msgs\n0,1,10,1\n").unwrap();
        let err = request(&argv(&format!(
            "--addr 127.0.0.1:9 --timeout-ms 300 --pattern {pat}"
        )))
        .unwrap_err();
        assert!(err.contains("connect"), "diagnostic was {err:?}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err:?}");
    }

    #[test]
    fn serve_requires_a_network() {
        assert!(serve(&argv("")).unwrap_err().contains("--network"));
    }

    #[test]
    fn request_requires_addr_and_pattern() {
        assert!(request(&argv("")).unwrap_err().contains("--addr"));
        assert!(request(&argv("--addr 127.0.0.1:1"))
            .unwrap_err()
            .contains("--pattern"));
    }

    #[test]
    fn federate_requires_a_network_and_sane_counts() {
        assert!(federate(&argv("")).unwrap_err().contains("--network"));
        let net_path = tmp("federate-zero-net.csv");
        crate::commands::network(&argv(&format!("--provider ec2 --nodes 4 --out {net_path}")))
            .unwrap();
        assert!(federate(&argv(&format!("--network {net_path} --shards 0")))
            .unwrap_err()
            .contains("--shards"));
    }

    #[test]
    fn federate_round_trip_on_loopback() {
        let net_path = tmp("federate-net.csv");
        crate::commands::network(&argv(&format!("--provider ec2 --nodes 4 --out {net_path}")))
            .unwrap();
        let out = federate(&argv(&format!(
            "--network {net_path} --shards 3 --requests 9 --ranks 8 --pool 2"
        )))
        .unwrap();
        assert!(out.contains("federated 3 shards"), "got {out}");
        // Routing is deterministic, so every repeat rides straight into
        // its home shard's result cache: perfect affinity.
        assert!(out.contains("affinity hit rate 1.00"), "got {out}");
        assert!(out.contains("ledger conserved"), "got {out}");
    }

    #[test]
    fn churn_requires_a_network_and_sane_alpha() {
        assert!(churn(&argv("")).unwrap_err().contains("--network"));
        let net_path = tmp("churn-alpha-net.csv");
        crate::commands::network(&argv(&format!("--provider ec2 --nodes 4 --out {net_path}")))
            .unwrap();
        assert!(churn(&argv(&format!("--network {net_path} --alpha -1")))
            .unwrap_err()
            .contains("--alpha"));
    }

    /// End-to-end churn on loopback: pinned seed, every emitted
    /// remap_response line respects the budget and cost monotonicity
    /// (the command itself rechecks; this asserts the output shape the
    /// CI validator parses).
    #[test]
    fn churn_round_trip_on_loopback() {
        let net_path = tmp("churn-net.csv");
        crate::commands::network(&argv(&format!("--provider ec2 --nodes 4 --out {net_path}")))
            .unwrap();
        let out = churn(&argv(&format!(
            "--network {net_path} --ranks 16 --rounds 4 --budget 4 --seed 42"
        )))
        .unwrap();
        assert!(out.contains("seeded drift rounds"), "got {out}");
        assert!(out.contains("wire remap diff verified"), "got {out}");
        // At least the wire diff is always emitted.
        let diffs: Vec<&str> = out
            .lines()
            .filter(|l| l.contains("\"kind\":\"remap_response\""))
            .collect();
        assert!(!diffs.is_empty(), "no remap_response lines in {out}");
        for line in diffs {
            assert!(line.contains("\"old_cost\":"), "{line}");
            assert!(line.contains("\"new_cost\":"), "{line}");
            assert!(line.contains("\"moved\":"), "{line}");
        }
    }

    #[test]
    fn serve_then_request_round_trip_on_loopback() {
        let net_path = tmp("serve-net.csv");
        let addr_path = tmp("serve-addr.txt");
        let pat_path = tmp("serve-pattern.csv");
        let map_path = tmp("serve-mapping.csv");
        // A leftover address file from a previous run would point at a
        // dead port; the daemon must be the one to (re)create it.
        let _ = std::fs::remove_file(&addr_path);
        crate::commands::network(&argv(&format!("--provider ec2 --nodes 4 --out {net_path}")))
            .unwrap();
        crate::commands::profile(&argv(&format!("--app sp --ranks 16 --out {pat_path}"))).unwrap();

        let serve_args = argv(&format!(
            "--network {net_path} --addr 127.0.0.1:0 --addr-file {addr_path} --workers 2"
        ));
        let server = std::thread::spawn(move || serve(&serve_args));

        // Wait for the daemon to publish its port.
        let addr = {
            let mut tries = 0;
            loop {
                match std::fs::read_to_string(&addr_path) {
                    Ok(s) if s.trim().contains(':') => break s.trim().to_string(),
                    _ if tries > 100 => panic!("daemon never published its address"),
                    _ => {
                        tries += 1;
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        };

        let out = request(&argv(&format!(
            "--addr {addr} --pattern {pat_path} --out {map_path}"
        )))
        .unwrap();
        assert!(out.contains("\"kind\":\"map_response\""), "got {out}");
        assert!(std::fs::read_to_string(&map_path)
            .unwrap()
            .starts_with("process,site"));

        // A malformed pattern is a non-zero one-line rejection.
        let bad_pat = tmp("serve-bad-pattern.csv");
        files::write(&bad_pat, "not,a,pattern\n").unwrap();
        let err = request(&argv(&format!("--addr {addr} --pattern {bad_pat}"))).unwrap_err();
        assert!(err.contains("bad_request"), "got {err:?}");
        assert!(!err.contains('\n'));

        // The same map over binary frames (cache hit now) and through
        // the pooled pipelined client: identical response lines modulo
        // the cache tier and timing fields.
        let v2_out = request(&argv(&format!(
            "--addr {addr} --pattern {pat_path} --protocol v2"
        )))
        .unwrap();
        assert!(v2_out.contains("\"kind\":\"map_response\""), "got {v2_out}");
        assert!(v2_out.contains("\"cached\":\"result\""), "got {v2_out}");
        let pooled_out = request(&argv(&format!(
            "--addr {addr} --pattern {pat_path} --pool 3"
        )))
        .unwrap();
        assert!(
            pooled_out.contains("\"cached\":\"result\""),
            "got {pooled_out}"
        );
        assert!(
            request(&argv(&format!("--addr {addr} --protocol v3 --stats")))
                .unwrap_err()
                .contains("expected v1 or v2")
        );

        let stats_out = request(&argv(&format!("--addr {addr} --stats --protocol v2"))).unwrap();
        assert!(stats_out.contains("\"served\":3"), "got {stats_out}");

        let bye = request(&argv(&format!("--addr {addr} --shutdown"))).unwrap();
        assert!(bye.contains("\"kind\":\"shutdown_response\""), "got {bye}");
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("until shutdown"), "got {summary}");
    }
}
