//! Minimal `--flag value` argument parsing (no external crates).

use std::collections::BTreeMap;

/// Parsed `--key value` pairs plus boolean switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: [&str; 10] = [
    "heatmap",
    "simulate",
    "reserve",
    "stats",
    "shutdown",
    "no-cache",
    "detail",
    "prometheus",
    "trace-dump",
    "multilevel",
];

impl Args {
    /// Parse an argument list of the form `--key value ... --switch ...`.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("expected a --flag, got {arg:?}"));
            };
            if SWITCHES.contains(&key) {
                out.switches.push(key.to_string());
            } else {
                i += 1;
                let value = argv
                    .get(i)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                out.values.insert(key.to_string(), value.clone());
            }
            i += 1;
        }
        Ok(out)
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|e| format!("--{key} {v:?}: {e}")),
        }
    }

    /// A required parsed flag.
    pub fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let v = self.required(key)?;
        v.parse::<T>().map_err(|e| format!("--{key} {v:?}: {e}"))
    }

    /// Is the boolean switch present?
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let a = Args::parse(&argv("--app lu --ranks 64 --heatmap")).unwrap();
        assert_eq!(a.required("app").unwrap(), "lu");
        assert_eq!(a.parsed::<usize>("ranks").unwrap(), 64);
        assert!(a.switch("heatmap"));
        assert!(!a.switch("simulate"));
    }

    #[test]
    fn multilevel_is_a_switch() {
        let a = Args::parse(&argv("--pattern p.csv --multilevel --ml-cutoff 64")).unwrap();
        assert!(a.switch("multilevel"));
        assert_eq!(a.parsed_or("ml-cutoff", 1024usize).unwrap(), 64);
        assert_eq!(a.required("pattern").unwrap(), "p.csv");
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv("--app"))
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn bare_word_is_an_error() {
        assert!(Args::parse(&argv("lu")).unwrap_err().contains("--flag"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv("")).unwrap();
        assert_eq!(a.parsed_or("seed", 7u64).unwrap(), 7);
        assert!(a.optional("out").is_none());
        assert!(a.required("network").unwrap_err().contains("required"));
    }

    #[test]
    fn bad_number_reported() {
        let a = Args::parse(&argv("--ranks abc")).unwrap();
        assert!(a.parsed::<usize>("ranks").unwrap_err().contains("abc"));
    }
}
