//! Geo-distributed process mapping — a reproduction of *"Efficient
//! Process Mapping in Geo-Distributed Cloud Data Centers"* (Zhou, Gong,
//! He, Zhai — SC'17).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`net`] | `geonet` | sites, `LT`/`BT` matrices, α–β model, synthetic clouds, calibration |
//! | [`comm`] | `commgraph` | `CG`/`AG` patterns, traces, CYPRESS-style compression, the five workloads |
//! | [`clustering`] | `geo-kmeans` | K-means (site grouping + workload core) |
//! | [`sim`] | `simnet` | discrete-event network simulator |
//! | [`runtime`] | `mpirt` | simulated message-passing runtime |
//! | [`mapping`] | `geomap-core` | problem formulation, Eq. 3 cost, Algorithm 1 (GeoMapper) |
//! | [`baselines`] | `geomap-baselines` | Random, Greedy, MPIPP, exhaustive, Monte Carlo |
//!
//! # Quickstart
//!
//! ```
//! use geo_process_mapping::prelude::*;
//!
//! // The paper's deployment: 4 EC2 regions x 16 nodes.
//! let network = net::presets::paper_ec2_network(16, net::InstanceType::M4Xlarge, 42);
//! // Profile the LU kernel at 64 ranks.
//! let pattern = comm::apps::AppKind::Lu.workload(64).pattern();
//! let problem = MappingProblem::unconstrained(pattern, network);
//!
//! let geo = GeoMapper::default().map(&problem);
//! let random = baselines::RandomMapper::default().map(&problem);
//! assert!(cost(&problem, &geo) < cost(&problem, &random));
//! ```

#![warn(missing_docs)]

pub use ::baselines;
pub use commgraph as comm;
pub use geo_kmeans as clustering;
pub use geomap_core as mapping;
pub use geonet as net;
pub use mpirt as runtime;
pub use simnet as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::comm;
    pub use crate::mapping::{cost, ConstraintVector, GeoMapper, Mapper, Mapping, MappingProblem};
    pub use crate::net;
    pub use crate::runtime;
    pub use crate::sim;
    pub use ::baselines;
}
