//! Geo-distributed analytics under data-residency law.
//!
//! The scenario the paper motivates (§1/§3.1): a K-means analytics job
//! over user data held in four regions, where EU privacy regulation pins
//! the processes handling European records to the Ireland site. We build
//! the constraint vector explicitly, sweep the fraction of regulated
//! data, and watch how much optimization freedom remains (Fig. 8's
//! phenomenon, driven by a concrete policy instead of random pins).
//!
//! ```text
//! cargo run --release --example data_residency
//! ```

use geo_process_mapping::prelude::*;
use geomap_core::cost as eq3_cost;
use geonet::SiteId;

fn main() {
    let network = net::presets::paper_ec2_network(16, net::InstanceType::M4Xlarge, 7);
    let ireland = network
        .sites()
        .iter()
        .position(|s| s.name == "eu-west-1")
        .map(SiteId)
        .expect("paper deployment includes Ireland");
    println!("network: {}", network.summary());
    println!(
        "regulated site: {} ({})",
        ireland,
        network.site(ireland).name
    );

    let pattern = comm::apps::AppKind::KMeans.workload(64).pattern();

    println!(
        "\n{:>16} {:>14} {:>14} {:>12}",
        "EU processes", "Baseline cost", "Geo cost", "improvement"
    );
    for eu_processes in [0usize, 4, 8, 12, 16] {
        // Pin the first `eu_processes` ranks (the ones reading EU
        // shards) to Ireland; everything else is free.
        let mut constraints = ConstraintVector::none(64);
        for i in 0..eu_processes {
            constraints.pin(i, ireland);
        }
        let problem = MappingProblem::new(pattern.clone(), network.clone(), constraints.clone());

        let baseline = eq3_cost(&problem, &baselines::RandomMapper::default().map(&problem));
        let geo_mapping = GeoMapper::default().map(&problem);
        geo_mapping.validate(&problem).unwrap();
        let geo = eq3_cost(&problem, &geo_mapping);

        // The policy holds by construction:
        for i in 0..eu_processes {
            assert_eq!(geo_mapping.site_of(i), ireland, "rank {i} escaped Ireland!");
        }
        println!(
            "{:>16} {:>13.1}s {:>13.1}s {:>11.1}%",
            eu_processes,
            baseline,
            geo,
            (baseline - geo) / baseline * 100.0,
        );
    }
    println!("\nEvery regulated rank stayed in eu-west-1; the optimizer reclaims the rest.");
}
