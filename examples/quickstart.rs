//! Quickstart: map an HPC kernel across four cloud regions.
//!
//! Builds the paper's EC2 deployment (US East, US West, Singapore,
//! Ireland — 16 nodes each), profiles NPB LU at 64 ranks, runs every
//! mapping algorithm and compares both the Eq. 3 cost and the actual
//! simulated execution time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use geo_process_mapping::prelude::*;
use geomap_core::cost as eq3_cost;

fn main() {
    // 1. The environment: 4 geo-distributed EC2 regions, 16 m4.xlarge
    //    instances each (paper §5.1).
    let network = net::presets::paper_ec2_network(16, net::InstanceType::M4Xlarge, 42);
    println!("network: {}", network.summary());

    // 2. The application: NPB LU, one process per instance.
    let app = comm::apps::AppKind::Lu;
    let workload = app.workload(64);
    let pattern = workload.pattern();
    println!(
        "workload: {} — {:.1} MB over {} messages, diagonal locality {:.2}",
        app,
        pattern.total_bytes() / 1e6,
        pattern.total_msgs(),
        pattern.diagonal_locality(9),
    );

    // 3. The problem and the mappers.
    let problem = MappingProblem::unconstrained(pattern, network.clone());
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(baselines::RandomMapper::default()),
        Box::new(baselines::GreedyMapper::default()),
        Box::new(baselines::MpippMapper::default()),
        Box::new(GeoMapper::default()),
    ];

    // 4. Compare: model cost (Eq. 3) and simulated communication time.
    println!(
        "\n{:<16} {:>12} {:>14}",
        "mapper", "Eq.3 cost", "simulated time"
    );
    let mut baseline_time = None;
    for mapper in &mappers {
        let mapping = mapper.map(&problem);
        mapping
            .validate(&problem)
            .expect("mappers must emit feasible mappings");
        let c = eq3_cost(&problem, &mapping);
        let t = runtime::execute_workload(
            workload.as_ref(),
            &network,
            mapping.as_slice(),
            &runtime::RunConfig::comm_only(),
        )
        .makespan;
        let vs = match baseline_time {
            None => {
                baseline_time = Some(t);
                String::new()
            }
            Some(base) => format!("  ({:+.0}% vs Baseline)", (base - t) / base * 100.0),
        };
        println!("{:<16} {c:>11.1}s {t:>13.2}s{vs}", mapper.name());
    }
}
