//! The complete Fig. 2 pipeline, end to end.
//!
//! Everything the paper automates, in order: profile the application
//! (trace + CYPRESS-style compression), calibrate the network with
//! simulated SKaMPI ping-pongs (O(M²) probes instead of O(N²)), group
//! sites with K-means, optimize the mapping — then *verify the result on
//! the ground-truth network the optimizer never saw*, by replaying the
//! program in the message-passing runtime simulator.
//!
//! ```text
//! cargo run --release --example full_pipeline
//! ```

use geo_process_mapping::prelude::*;
use geomap_core::pipeline::{self, PipelineConfig};
use geonet::calibration_cost_minutes;

fn main() {
    // Ground truth: the live cloud. The optimizer only ever sees probes.
    let truth = net::presets::paper_ec2_network(16, net::InstanceType::M4Xlarge, 2024);
    let app = comm::apps::AppKind::Sp;
    let workload = app.workload(64);
    let program = workload.program();

    println!("== stage 0: the environment (hidden from the optimizer) ==");
    println!("{}", truth.summary());
    let (site_min, node_min) = calibration_cost_minutes(4, 64);
    println!(
        "calibration budget: {site_min:.0} site-pair minutes vs {node_min:.0} node-pair minutes"
    );

    println!("\n== stages 1-4: profile -> calibrate -> group -> optimize ==");
    let constraints = ConstraintVector::random(64, 0.2, &truth.capacities(), 99);
    let result = pipeline::run(&program, &truth, constraints, &PipelineConfig::default());
    println!(
        "profiling: {} edges, trace compressed {:.0}x",
        result.pattern.num_edges(),
        result.compression_ratio
    );
    println!(
        "calibration: {} probes, max inter-site variation {:.1}%",
        result.calibration.probes,
        result.calibration.max_inter_site_cv() * 100.0
    );
    println!(
        "optimization: cost {:.1}s (estimated), took {:?}",
        result.estimated_cost, result.optimization_time
    );

    println!("\n== stage 5: verify against the ground truth ==");
    let cfg = runtime::RunConfig::comm_only();
    let optimized = runtime::execute(&program, &truth, result.mapping.as_slice(), &cfg).makespan;
    let random_mapping = baselines::RandomMapper::default().map(&result.problem);
    let random = runtime::execute(&program, &truth, random_mapping.as_slice(), &cfg).makespan;
    println!("random placement:     {random:>8.2}s communication time");
    println!("pipeline's placement: {optimized:>8.2}s communication time");
    println!(
        "improvement:          {:>8.1}%",
        (random - optimized) / random * 100.0
    );
    assert!(
        optimized < random,
        "the optimized mapping must beat random on the real network"
    );
}
