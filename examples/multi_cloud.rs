//! Mapping across two cloud providers with set-valued residency rules.
//!
//! The paper's future-work scenario: a deployment spanning Amazon EC2
//! *and* Windows Azure, where cross-provider links pay a peering
//! penalty, and GDPR data may live in **any EU region of either
//! provider** — a multi-site constraint (an allowed-site *set*, not a
//! single pin), this workspace's extension of the paper's constraint
//! model.
//!
//! ```text
//! cargo run --release --example multi_cloud
//! ```

use geo_process_mapping::prelude::*;
use geomap_core::cost as eq3_cost;
use geomap_core::{AllowedSites, GeoMapperMulti};
use geonet::presets::MultiCloud;
use geonet::SiteId;

fn main() {
    // Three EC2 + three Azure regions, 8 nodes each.
    let deployment = MultiCloud::default();
    let network = deployment.build();
    println!("multi-cloud network: {}", network.summary());
    for (i, site) in network.sites().iter().enumerate() {
        let provider = if i < deployment.ec2_regions.len() {
            "EC2"
        } else {
            "Azure"
        };
        println!(
            "  site {i}: {:<16} ({provider}, {} nodes)",
            site.name, site.nodes
        );
    }

    let n = network.total_nodes();
    let pattern = comm::apps::AppKind::KMeans.workload(n).pattern();
    let problem = MappingProblem::unconstrained(pattern, network.clone());

    // GDPR rule: the first quarter of the processes handle EU records
    // and may run in eu-west-1 (EC2) or West Europe (Azure) — either
    // provider satisfies the residency law.
    let eu_sites: Vec<SiteId> = network
        .sites()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == "eu-west-1" || s.name == "West Europe")
        .map(|(i, _)| SiteId(i))
        .collect();
    let mut allowed = AllowedSites::unrestricted(n);
    for i in 0..n / 4 {
        allowed.restrict(i, &eu_sites);
    }
    println!(
        "\npolicy: processes 0..{} restricted to {:?}",
        n / 4,
        eu_sites
            .iter()
            .map(|s| &network.site(*s).name)
            .collect::<Vec<_>>()
    );

    let mapping = GeoMapperMulti::new(allowed.clone()).map(&problem);
    assert!(allowed.satisfied_by(mapping.as_slice()), "policy violated");

    let random = eq3_cost(&problem, &baselines::RandomMapper::default().map(&problem));
    let multi = eq3_cost(&problem, &mapping);
    println!("\nrandom placement cost:      {random:>8.1}s");
    println!(
        "policy-aware Geo cost:      {multi:>8.1}s  ({:.1}% better)",
        (random - multi) / random * 100.0
    );

    // Where did the EU processes land?
    let mut eu_counts = vec![0usize; network.num_sites()];
    for i in 0..n / 4 {
        eu_counts[mapping.site_of(i).index()] += 1;
    }
    println!("\nEU process placement:");
    for (i, c) in eu_counts.iter().enumerate() {
        if *c > 0 {
            println!("  {:<16} {c} processes", network.site(SiteId(i)).name);
        }
    }
    println!("(all inside the allowed EU set, split across providers as capacity allows)");
}
