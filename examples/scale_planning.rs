//! Capacity planning: how far does the mapping advantage carry?
//!
//! A platform team sizing a geo-distributed deployment wants to know,
//! before renting instances, (a) how much communication time a smart
//! mapping saves at each fleet size and (b) how long the optimizer
//! itself takes — the trade-off behind the paper's Figs. 4 and 7. This
//! example sweeps fleet sizes for two very different workloads and
//! prints both numbers.
//!
//! ```text
//! cargo run --release --example scale_planning [max_machines]
//! ```

use geo_process_mapping::prelude::*;
use geomap_core::cost as eq3_cost;
use std::time::Instant;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("max_machines must be an integer"))
        .unwrap_or(1024);

    for app in [comm::apps::AppKind::Lu, comm::apps::AppKind::KMeans] {
        println!("== {app} ==");
        println!(
            "{:>9} {:>14} {:>14} {:>12} {:>12}",
            "machines", "Baseline cost", "Geo cost", "saved", "opt. time"
        );
        let mut machines = 64usize;
        while machines <= max {
            let network =
                net::presets::paper_ec2_network(machines / 4, net::InstanceType::M4Xlarge, 5);
            let pattern = app.workload(machines).pattern();
            let problem = MappingProblem::unconstrained(pattern, network);

            let baseline: f64 = (0..3)
                .map(|s| {
                    eq3_cost(
                        &problem,
                        &baselines::RandomMapper::with_seed(s).map(&problem),
                    )
                })
                .sum::<f64>()
                / 3.0;

            let start = Instant::now();
            let mapping = GeoMapper::default().map(&problem);
            let elapsed = start.elapsed();
            let geo = eq3_cost(&problem, &mapping);

            println!(
                "{machines:>9} {baseline:>13.1}s {geo:>13.1}s {:>11.1}% {:>12?}",
                (baseline - geo) / baseline * 100.0,
                elapsed
            );
            machines *= 4;
        }
        println!();
    }
    println!(
        "(the optimizer stays sub-minute while savings remain >50% — the paper's Fig. 7 story)"
    );
}
