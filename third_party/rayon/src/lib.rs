//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! [`ParIter`] materialises its source eagerly; only [`ParIter::map`]
//! actually fans out, running the closure on scoped `std::thread`s fed
//! from a shared work queue. A global token pool bounds the *total*
//! number of extra threads across nested parallel calls to
//! `available_parallelism() - 1`, so a parallel map inside a parallel
//! map degrades to sequential instead of oversubscribing.

use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Global budget of extra worker threads (the calling thread is free).
fn token_pool() -> &'static AtomicIsize {
    static POOL: OnceLock<AtomicIsize> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = std::thread::available_parallelism().map_or(1, |p| p.get());
        AtomicIsize::new(n as isize - 1)
    })
}

/// Try to take up to `want` worker tokens; returns how many were taken.
fn acquire_tokens(want: usize) -> usize {
    let pool = token_pool();
    let mut got = 0;
    while got < want {
        let cur = pool.load(Ordering::Relaxed);
        if cur <= 0 {
            break;
        }
        if pool
            .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            got += 1;
        }
    }
    got
}

fn release_tokens(n: usize) {
    token_pool().fetch_add(n as isize, Ordering::Relaxed);
}

/// An eagerly materialised "parallel" iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion of an owned collection into a [`ParIter`].
pub trait IntoParallelIterator {
    /// Element type produced.
    type Item;
    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Borrowing conversion, mirroring `rayon`'s `par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type produced.
    type Item: 'a;
    /// Iterate `&self` in parallel.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for core::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<T> ParIter<T> {
    /// Pair each item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Apply `f` to every item, fanning out over worker threads when the
    /// global budget allows. Item order is preserved.
    pub fn map<O, F>(self, f: F) -> ParIter<O>
    where
        T: Send,
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        let n = self.items.len();
        if n <= 1 {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
            };
        }
        let workers = acquire_tokens(n - 1);
        if workers == 0 {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
            };
        }

        let queue = Mutex::new(self.items.into_iter().enumerate());
        let mut out: Vec<Option<O>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let results = Mutex::new(out);
        let f = &f;
        let run = || loop {
            // Hold the queue lock only for the pop, not the closure call.
            let next = queue.lock().unwrap().next();
            match next {
                Some((i, item)) => {
                    let v = f(item);
                    results.lock().unwrap()[i] = Some(v);
                }
                None => break,
            }
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(run);
            }
            run();
        });
        release_tokens(workers);
        let items = results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|v| v.expect("every queue slot was processed"))
            .collect();
        ParIter { items }
    }

    /// Gather all items into any `FromIterator` collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Minimum item under `cmp`, or `None` when empty. Ties resolve to
    /// the earliest item, matching `rayon`'s documented behaviour.
    pub fn min_by<F>(self, mut cmp: F) -> Option<T>
    where
        F: FnMut(&T, &T) -> core::cmp::Ordering,
    {
        let mut it = self.items.into_iter();
        let first = it.next()?;
        Some(it.fold(first, |best, x| {
            if cmp(&x, &best) == core::cmp::Ordering::Less {
                x
            } else {
                best
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_enumerate_map() {
        let v = vec![10, 20, 30];
        let out: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x + 1)).collect();
        assert_eq!(out, vec![(0, 11), (1, 21), (2, 31)]);
    }

    #[test]
    fn min_by_prefers_earliest_tie() {
        let v = vec![(1.0, 'a'), (0.5, 'b'), (0.5, 'c')];
        let m = v
            .into_par_iter()
            .min_by(|x, y| x.0.partial_cmp(&y.0).unwrap())
            .unwrap();
        assert_eq!(m.1, 'b');
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        let out: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..8usize).into_par_iter().map(|j| i * j).collect();
                inner.into_iter().sum()
            })
            .collect();
        assert_eq!(out[2], (0..8).map(|j| 2 * j).sum());
    }

    #[test]
    fn empty_and_singleton_sources() {
        let e: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(e.is_empty());
        let s: Vec<i32> = vec![7].into_par_iter().map(|x| x * 3).collect();
        assert_eq!(s, vec![21]);
    }
}
