//! The [`Strategy`] trait and the combinators used in-tree: numeric
//! ranges, tuples of strategies, and `prop_map`.

use rand::{RngExt, SampleRange, StdRng};

/// A recipe for producing random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($range:ident),*) => {$(
        impl<T> Strategy for core::ops::$range<T>
        where
            core::ops::$range<T>: SampleRange<T> + Clone,
        {
            type Value = T;
            fn new_value(&self, rng: &mut StdRng) -> T {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(Range, RangeInclusive);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
