//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` test macro, `prop_assert*`/`prop_assume!`, range and
//! tuple strategies, `collection::vec`, `sample::select` and
//! `Strategy::prop_map`.
//!
//! Differences from upstream, by design: no shrinking (a failure
//! reports the assertion message and case number only) and a fixed
//! deterministic seed per test derived from its module path, so every
//! failure reproduces exactly on re-run.

pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count toward
    /// the configured number of cases.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Define property tests. Mirrors upstream's grammar for the forms used
/// in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in collection::vec(0u64..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let strategy = ($($strat,)+);
                $crate::test_runner::run(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    &strategy,
                    |($($arg,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Assert inside a property test; failure fails only the current case
/// (with the formatted message) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!(a == b)` with a `{:?}` report of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with a `{:?}` report of both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Discard the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 2usize..=9, y in -1.5f64..1.5, z in 0u64..3) {
            prop_assert!((2..=9).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y), "y={y}");
            prop_assert!(z < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        /// Doc comments and assume/select/vec all work.
        #[test]
        fn vec_select_assume(
            v in prop::collection::vec((0usize..5, 0.0f64..1.0), 1..8),
            pick in prop::sample::select(vec![8usize, 12, 16]),
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 8);
            prop_assert_eq!(pick % 4, 0);
        }
    }

    #[test]
    fn prop_map_composes() {
        let strat = (1usize..4, 1usize..4).prop_map(|(a, b)| a * b);
        let mut rng = crate::test_runner::rng_for("prop_map_composes");
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((1..16).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        let config = crate::test_runner::Config::with_cases(5);
        crate::test_runner::run(&config, "failing", &(0usize..10,), |(x,)| {
            crate::prop_assert!(x > 100, "x={x}");
            Ok(())
        });
    }
}
