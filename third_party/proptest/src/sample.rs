//! Sampling strategies over explicit value sets (`select`).

use crate::strategy::Strategy;
use rand::{RngExt, StdRng};

/// Strategy yielding a uniformly chosen clone of one of `options`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "cannot select from no options");
    Select { options }
}

/// Strategy returned by [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.options[rng.random_range(0..self.options.len())].clone()
    }
}
