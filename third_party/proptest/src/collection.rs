//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use rand::{RngExt, StdRng};

/// Lengths a generated collection may take: either a half-open range or
/// an exact count (upstream supports more forms; these are the ones
/// used in-tree).
#[derive(Debug, Clone)]
pub struct SizeRange(core::ops::Range<usize>);

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange(exact..exact + 1)
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange(r)
    }
}

/// Strategy for a `Vec` whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.0.clone());
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
