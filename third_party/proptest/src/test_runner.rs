//! The case-generation loop behind `proptest!`.

use crate::strategy::Strategy;
use crate::TestCaseError;
use rand::{SeedableRng, StdRng};

/// How a property test runs. Upstream calls this `Config` and re-exports
/// it as `ProptestConfig` from the prelude; we do the same.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
    /// Abort with an error after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running `cases` cases with the default reject budget.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Deterministic generator for a test: seeded from a stable string hash
/// of the test's full path, so reruns generate identical cases.
pub fn rng_for(test_name: &str) -> StdRng {
    // FNV-1a over the name; any stable 64-bit hash would do.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Run `test` against `config.cases` generated values, panicking (so the
/// surrounding `#[test]` fails) on the first falsified case.
pub fn run<S, F>(config: &Config, test_name: &str, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = rng_for(test_name);
    let mut accepted: u32 = 0;
    let mut rejected: u32 = 0;
    let mut case: u64 = 0;
    while accepted < config.cases {
        case += 1;
        let value = strategy.new_value(&mut rng);
        match test(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections \
                     ({rejected} rejects for {accepted} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property falsified at case {case} \
                     (deterministic seed; rerun reproduces): {msg}"
                );
            }
        }
    }
}
