//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Each benchmark is warmed up, then timed over `sample_size` samples;
//! every sample runs the closure in a loop sized so the sample lasts at
//! least ~2 ms (so sub-microsecond kernels are still resolvable with a
//! monotonic clock). Reported numbers are mean / min / max nanoseconds
//! per iteration — no statistical analysis, plots or state on disk, but
//! plenty for the relative orderings EXPERIMENTS.md tracks.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver, holding the run configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing the group's config.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f`, passing it `input` alongside the [`Bencher`].
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
    }

    /// Benchmark `f` with no separate input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
    }

    /// End the group (upstream flushes reports here; ours already printed).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label a benchmark as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    /// Mean, min, max nanoseconds per iteration of the last `iter` call.
    stats: Option<(f64, f64, f64)>,
}

/// Minimum duration of one timed sample; loops the closure until met.
const MIN_SAMPLE_NANOS: u128 = 2_000_000;

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            stats: None,
        }
    }

    /// Time `f`, discarding its output via an opaque sink.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the per-sample loop so each sample is long
        // enough for the clock to resolve.
        let mut iters_per_sample: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let nanos = t.elapsed().as_nanos();
            if nanos >= MIN_SAMPLE_NANOS {
                break;
            }
            iters_per_sample = iters_per_sample
                .saturating_mul(if nanos == 0 { 16 } else { 2 })
                .min(1 << 40);
        }

        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        self.stats = Some((mean, min, max));
    }

    fn report(&self, label: &str) {
        match self.stats {
            Some((mean, min, max)) => println!(
                "{label:<48} time: [{} {} {}]",
                fmt_nanos(min),
                fmt_nanos(mean),
                fmt_nanos(max)
            ),
            None => println!("{label:<48} time: [no iter() call]"),
        }
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work. Same contract as `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark harness function running `targets` under a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group! {
        name = named_form;
        config = Criterion::default().sample_size(3);
        targets = targets
    }

    criterion_group!(short_form, targets);

    #[test]
    fn both_group_forms_run() {
        named_form();
        short_form();
    }
}
