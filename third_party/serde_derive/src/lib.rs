//! Derive backend for the vendored `serde` stand-in: emits the empty
//! marker impls for `#[derive(Serialize, Deserialize)]`. No `syn`
//! dependency — the item name is recovered with a hand-rolled token
//! scan, which is all the marker impls need.
//!
//! Limitation (checked at expansion time): generic items are rejected,
//! since emitting correct impls for them would require real parsing.
//! Every derive site in this workspace is non-generic.

use proc_macro::{TokenStream, TokenTree};

/// The identifier following `struct`/`enum`, skipping attributes,
/// doc comments and visibility.
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<')
                        {
                            panic!(
                                "vendored serde_derive does not support generic items \
                                 (deriving on `{name}`); see third_party/README.md"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("expected item name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("vendored serde_derive: no struct/enum found in derive input");
}

/// Derive the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derive the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
