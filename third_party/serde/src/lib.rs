//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Nothing in-tree actually serializes through serde yet (the CSV
//! emitters are hand-rolled), so the traits are pure markers and the
//! derives emit empty impls. The moment real (de)serialization is
//! needed, this crate must grow methods or be swapped for upstream
//! serde — see third_party/README.md.

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
