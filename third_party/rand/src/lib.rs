//! Offline stand-in for the subset of the `rand` crate API used by this
//! workspace: a seedable deterministic generator ([`rngs::StdRng`]) and
//! uniform range sampling ([`RngExt::random_range`]).
//!
//! The stream is xoshiro256++ (not upstream's ChaCha12); every consumer
//! in-tree relies only on *determinism per seed*, which this keeps.

pub mod rngs;

pub use rngs::StdRng;

/// A random-number source producing 64 uniform bits per call.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore + Sized {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        (0.0..1.0f64).sample_from(self) < p
    }
}

impl<R: RngCore + Sized> RngExt for R {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply map.
#[inline]
fn uniform_below<G: RngCore + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        let wide = (f64::from(self.start)..f64::from(self.end)).sample_from(rng) as f32;
        if wide < self.end {
            wide
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn single_point_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.random_range(4usize..=4), 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        StdRng::seed_from_u64(0).random_range(5usize..5);
    }

    #[test]
    fn bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..2000).filter(|_| rng.random_bool(0.25)).count();
        assert!((300..700).contains(&hits), "{hits}");
    }
}
